"""Configuration objects for instantiating file systems and simulators.

The cut-and-paste framework is assembled from components at start-up; these
dataclasses are the "wiring lists" used by the two instantiations
(:class:`repro.pfs.filesystem.PegasusFileSystem` and
:class:`repro.patsy.simulator.PatsySimulator`).  They deliberately mirror the
knobs discussed in the paper: cache size and flush policy (Section 5.1),
storage layout and segment size (Section 2), the disk/bus complement of the
simulated Sprite file server (Section 5.1), and so on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import ConfigurationError
from repro.units import DEFAULT_BLOCK_SIZE, KB, MB


def _is_registered(kind: str, name: str) -> bool:
    """Whether a component is registered under ``(kind, name)``.

    Policy-name validation accepts the built-in names statically and falls
    back to the :mod:`repro.assembly.registry` for third-party components
    (which must be registered before the configuration is constructed).
    The import is lazy because config sits below the assembly layer in the
    import graph.
    """
    from repro.assembly.registry import registry

    return registry.has(kind, name)

__all__ = [
    "CacheConfig",
    "FlushConfig",
    "LayoutConfig",
    "HostConfig",
    "ArrayConfig",
    "ClusterConfig",
    "SimulationConfig",
    "DAEMON_LOW_WATER_DEFAULTS",
    "sprite_server_config",
    "sun4_280_config",
    "cluster_config",
    "small_test_config",
]


@dataclass(frozen=True)
class CacheConfig:
    """File-system block cache configuration."""

    size_bytes: int = 8 * MB
    block_size: int = DEFAULT_BLOCK_SIZE
    #: replacement policy: "lru", "random", "lfu", "slru", "lru-k",
    #: "clock", "2q" or "arc" (see :mod:`repro.core.replacement`).
    replacement: str = "lru"
    #: fraction of the cache protected by SLRU (only used by "slru").
    slru_protected_fraction: float = 0.5
    #: K parameter for LRU-K replacement.
    lru_k: int = 2
    #: fraction of the cache given to 2Q's A1in FIFO (only used by "2q").
    twoq_in_fraction: float = 0.25
    #: size of 2Q's A1out ghost FIFO as a fraction of the cache.
    twoq_out_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ConfigurationError("block_size must be positive")
        if self.size_bytes < self.block_size:
            raise ConfigurationError("cache must hold at least one block")
        if self.replacement not in {
            "lru",
            "random",
            "lfu",
            "slru",
            "lru-k",
            "clock",
            "2q",
            "arc",
        } and not _is_registered("replacement", self.replacement):
            raise ConfigurationError(f"unknown replacement policy {self.replacement!r}")
        # Policy parameters are validated only for the selected policy:
        # the knobs are documented as "only used by" their policy, and a
        # config that never reads a value must not be rejected over it.
        if self.replacement == "slru" and not (0.0 < self.slru_protected_fraction < 1.0):
            raise ConfigurationError("slru_protected_fraction must be in (0, 1)")
        if self.replacement == "2q" and (
            not (0.0 < self.twoq_in_fraction < 1.0) or self.twoq_out_fraction <= 0.0
        ):
            raise ConfigurationError("2Q fractions must be positive (in_fraction < 1)")

    @property
    def num_blocks(self) -> int:
        return self.size_bytes // self.block_size


#: Per-policy defaults for :attr:`FlushConfig.daemon_low_water`, applied when
#: the field is left at ``None``.  Rationale:
#:
#: * ``periodic`` — 1/16 of the cache.  The update daemon writes on a timer
#:   anyway, so flushing slightly ahead of allocation pressure costs no extra
#:   write traffic in steady state but absorbs allocation bursts with one
#:   daemon wakeup instead of one per blocked allocation.
#: * ``ups`` — 0.  Write saving *is* the policy: every block written ahead of
#:   real pressure is a block that might have died in memory, so the UPS
#:   experiment must stay strictly flush-on-demand.
#: * ``nvram`` — 0.  The NVRAM write-behind daemon already drains at its own
#:   high-water mark; a second flush-ahead would fight it for the same blocks
#:   and blur the "drain only when the NVRAM fills" semantics being measured.
DAEMON_LOW_WATER_DEFAULTS = {
    "periodic": 1.0 / 16.0,
    "ups": 0.0,
    "nvram": 0.0,
}


@dataclass(frozen=True)
class FlushConfig:
    """Delayed-write (cache flush) policy configuration.

    ``policy`` selects between the experiments of Section 5.1:

    * ``"periodic"`` — the Unix 30-second-update baseline,
    * ``"ups"`` — write-saving: flush only when out of non-dirty blocks,
    * ``"nvram"`` — dirty data confined to an NVRAM buffer of
      ``nvram_bytes``; when full, flush the oldest dirty block
      (``whole_file=False``) or its whole file (``whole_file=True``).
    """

    policy: str = "periodic"
    update_interval: float = 30.0
    scan_interval: float = 5.0
    nvram_bytes: int = 4 * MB
    whole_file: bool = True
    #: flush in a separate daemon thread (the Section 5.2 lesson) rather than
    #: synchronously in the thread that needed a block.
    asynchronous: bool = True
    #: free-block low-water mark for the asynchronous daemon, as a fraction
    #: of the cache: when woken by allocation pressure the daemon keeps
    #: flushing until this many blocks are allocatable again, so bursts of
    #: allocations are absorbed without one wakeup per request.  ``None``
    #: selects the per-policy default from :data:`DAEMON_LOW_WATER_DEFAULTS`;
    #: 0 keeps the strict flush-on-demand behaviour (required by the UPS
    #: write-saving policy, which must never write ahead of real pressure).
    daemon_low_water: Optional[float] = None

    def __post_init__(self) -> None:
        if self.policy not in {"periodic", "ups", "nvram"} and not _is_registered(
            "flush", self.policy
        ):
            raise ConfigurationError(f"unknown flush policy {self.policy!r}")
        if self.update_interval <= 0 or self.scan_interval <= 0:
            raise ConfigurationError("flush intervals must be positive")
        if self.nvram_bytes <= 0:
            raise ConfigurationError("nvram_bytes must be positive")
        if self.daemon_low_water is not None and not (0.0 <= self.daemon_low_water < 1.0):
            raise ConfigurationError("daemon_low_water must be in [0, 1)")

    def resolved_daemon_low_water(self) -> float:
        """The effective flush-ahead low-water mark for this policy."""
        if self.daemon_low_water is not None:
            return self.daemon_low_water
        return DAEMON_LOW_WATER_DEFAULTS[self.policy]


@dataclass(frozen=True)
class LayoutConfig:
    """Storage-layout configuration (segmented LFS by default)."""

    kind: str = "lfs"
    segment_size: int = 256 * KB
    #: start cleaning when the fraction of free segments drops below this.
    cleaner_low_water: float = 0.2
    #: stop cleaning when the fraction of free segments rises above this.
    cleaner_high_water: float = 0.4
    #: cleaner policy: "greedy" or "cost-benefit".
    cleaner_policy: str = "cost-benefit"
    #: cost-benefit age normalisation (seconds): a segment this old doubles
    #: its benefit score relative to a fresh one (Sprite's utilisation-vs-age
    #: trade-off; see :class:`repro.core.storage.cleaner.CostBenefitCleaner`).
    cleaner_age_scale: float = 30.0
    #: FFS-style layout parameters (used when kind == "ffs").
    cylinder_group_size: int = 2 * MB
    #: per-segment sparse index + bloom filter on the LFS read/cleaner
    #: path (LSM-style).  Off reproduces the pre-index stack byte for
    #: byte: eager summary reloads at mount, full segment scans per
    #: cleaner wakeup, one read per live block when cleaning.
    segment_index: bool = True
    #: sample every Nth summary entry into the sparse offset index.
    index_sparse_every: int = 4
    #: bloom filter size in bits per indexed key.
    index_bloom_bits: int = 8
    #: bound on the cleaner's candidate set drawn from the utilisation
    #: buckets (0 = scan every segment, as without the index).
    cleaner_candidates: int = 64
    #: maximum blocks coalesced into one cold-read run (<=1 disables).
    read_coalesce_blocks: int = 8

    def __post_init__(self) -> None:
        if self.kind not in {"lfs", "ffs"} and not _is_registered("layout", self.kind):
            raise ConfigurationError(f"unknown storage layout {self.kind!r}")
        if self.segment_size <= 0:
            raise ConfigurationError("segment_size must be positive")
        if not (0.0 <= self.cleaner_low_water < self.cleaner_high_water <= 1.0):
            raise ConfigurationError("cleaner water marks must satisfy 0 <= low < high <= 1")
        if self.cleaner_policy not in {"greedy", "cost-benefit"} and not _is_registered(
            "cleaner", self.cleaner_policy
        ):
            raise ConfigurationError(f"unknown cleaner policy {self.cleaner_policy!r}")
        if self.cleaner_age_scale <= 0:
            raise ConfigurationError("cleaner_age_scale must be positive")
        if self.index_sparse_every < 1:
            raise ConfigurationError("index_sparse_every must be >= 1")
        if self.index_bloom_bits < 1:
            raise ConfigurationError("index_bloom_bits must be >= 1")
        if self.cleaner_candidates < 0:
            raise ConfigurationError("cleaner_candidates must be >= 0")
        if self.read_coalesce_blocks < 0:
            raise ConfigurationError("read_coalesce_blocks must be >= 0")

    def index_config(self):
        """The :class:`~repro.core.storage.segindex.SegmentIndexConfig`
        these knobs describe, or None when the index is disabled."""
        if not self.segment_index:
            return None
        from repro.core.storage.segindex import SegmentIndexConfig

        return SegmentIndexConfig(
            sparse_every=self.index_sparse_every,
            bloom_bits=self.index_bloom_bits,
            cleaner_candidates=self.cleaner_candidates,
            read_coalesce_blocks=self.read_coalesce_blocks,
        )


@dataclass(frozen=True)
class HostConfig:
    """Host and I/O sub-system configuration for a simulated machine."""

    num_disks: int = 1
    num_buses: int = 1
    disk_model: str = "hp97560"
    #: SCSI-2 sustained transfer rate, bytes per second.
    bus_bandwidth: float = 10 * MB
    #: per-transaction bus arbitration + selection overhead, seconds.
    bus_overhead: float = 0.0002
    #: host memory copy bandwidth, bytes per second (used to charge for the
    #: buffer copies that the simulator cannot perform for real).
    memory_copy_bandwidth: float = 80 * MB
    #: disk queue scheduling policy: "fcfs", "scan", "cscan", "look", "clook".
    io_scheduler: str = "clook"

    def __post_init__(self) -> None:
        if self.num_disks < 1 or self.num_buses < 1:
            raise ConfigurationError("need at least one disk and one bus")
        if self.num_buses > self.num_disks:
            raise ConfigurationError("more buses than disks makes no sense")
        if self.io_scheduler not in {
            "fcfs",
            "scan",
            "cscan",
            "look",
            "clook",
            "scan-edf",
        } and not _is_registered("iosched", self.io_scheduler):
            raise ConfigurationError(f"unknown I/O scheduler {self.io_scheduler!r}")

    def bus_for_disk(self, disk_index: int) -> int:
        """Disks are spread round-robin over the available buses."""
        return disk_index % self.num_buses


@dataclass(frozen=True)
class ArrayConfig:
    """Multi-volume storage-array configuration.

    The traced Sprite server was a Sun 4/280 with ten HP 97560 disks on
    three SCSI buses carved into more than a dozen file systems (Section
    5.1).  An array groups the machine's disks into ``volumes`` independent
    volumes — each with its own storage layout, cache shard and flush daemon
    — and routes files (or individual blocks, for striping) onto them with a
    pluggable placement policy.  When ``SimulationConfig.array`` is set it
    takes precedence over ``HostConfig.num_disks``/``num_buses`` for the
    simulated hardware complement; the remaining host knobs (disk model,
    bus bandwidth, I/O scheduler) still apply.
    """

    #: number of independent volumes the disks are carved into.
    volumes: int = 1
    #: number of shared SCSI buses; disks attach round-robin by global index,
    #: so a volume's disks spread over the buses exactly like the real
    #: machine's.
    buses: int = 1
    #: disks attached to each bus (total = buses * disks_per_bus unless
    #: ``num_disks`` overrides it — the Sun 4/280's 10-on-3 is uneven).
    disks_per_bus: int = 1
    #: explicit total disk count (None = buses * disks_per_bus).
    num_disks: Optional[int] = None
    #: placement policy routing files/blocks to volumes: "hash" (whole file
    #: by name hash), "stripe" (round-robin stripe units across volumes),
    #: "directory" (files co-locate with their parent directory) or "node"
    #: (top-level directories home on their creator's cluster node,
    #: directory affinity below — the partitioned layout the parallel
    #: replay executor requires).
    placement: str = "hash"
    #: stripe unit in file blocks (placement == "stripe").
    stripe_unit_blocks: int = 16
    #: cache sharding: "per-volume" (one BlockCache shard per volume behind
    #: the ShardedCache façade) or "unified" (one cache over all volumes).
    shard: str = "per-volume"
    #: aggregate dirty-ratio high-water mark at which the shared governor
    #: starts draining the dirtiest shard (1.0 disables the governor).
    governor_high_water: float = 0.85
    #: aggregate dirty ratio at which the governor stops draining.
    governor_low_water: float = 0.70
    #: how often (simulated seconds) the governor re-examines the shards.
    governor_interval: float = 1.0

    def __post_init__(self) -> None:
        if self.volumes < 1:
            raise ConfigurationError("an array needs at least one volume")
        if self.buses < 1 or self.disks_per_bus < 1:
            raise ConfigurationError("need at least one bus and one disk per bus")
        if self.num_disks is not None and self.num_disks < 1:
            raise ConfigurationError("num_disks must be positive")
        disks = self.total_disks
        if disks < self.volumes:
            raise ConfigurationError("each volume needs at least one disk")
        if self.buses > disks:
            raise ConfigurationError("more buses than disks makes no sense")
        if self.placement not in {"hash", "stripe", "directory", "node"} and not _is_registered(
            "placement", self.placement
        ):
            raise ConfigurationError(f"unknown placement policy {self.placement!r}")
        if self.stripe_unit_blocks < 1:
            raise ConfigurationError("stripe_unit_blocks must be positive")
        if self.shard not in {"per-volume", "unified"}:
            raise ConfigurationError(f"unknown cache shard policy {self.shard!r}")
        if not (0.0 <= self.governor_low_water <= self.governor_high_water <= 1.0):
            raise ConfigurationError("governor water marks must satisfy 0 <= low <= high <= 1")
        if self.governor_interval <= 0:
            raise ConfigurationError("governor_interval must be positive")

    @property
    def total_disks(self) -> int:
        return self.num_disks if self.num_disks is not None else self.buses * self.disks_per_bus

    def bus_for_disk(self, disk_index: int) -> int:
        """Disks are spread round-robin over the available buses."""
        return disk_index % self.buses

    def disks_of_volume(self, volume_index: int) -> range:
        """Global disk indices belonging to one volume (contiguous split;
        the first ``total_disks % volumes`` volumes get the spare disks)."""
        if not (0 <= volume_index < self.volumes):
            raise ConfigurationError(f"no volume {volume_index} in a {self.volumes}-volume array")
        disks = self.total_disks
        base, extra = divmod(disks, self.volumes)
        start = volume_index * base + min(volume_index, extra)
        return range(start, start + base + (1 if volume_index < extra else 0))


@dataclass(frozen=True)
class ClusterConfig:
    """Multi-machine cluster tier above the storage array.

    A cluster is ``nodes`` machines, each running the per-node volume
    complement described by ``SimulationConfig.array`` (a single-volume
    node when no array is configured).  Node 0 is the front end where
    clients arrive; block I/O addressed to another node's volumes crosses a
    simulated network link — per-NIC queueing plus latency and bandwidth,
    charged with the same time discipline as PATSY's SCSI buses.

    A skew monitor watches per-volume load and free space and, when the
    imbalance passes the configured thresholds, *migrates* files between
    volumes online: live blocks are copied forward through the cache and
    the routing entry is flipped atomically.  With ``nodes=1`` no network
    objects or monitor threads exist at all, so the replay is byte-identical
    to the bare array stack (pinned by ``tests/test_cluster.py``).
    """

    #: number of machines; node 0 is the client-facing front end.
    nodes: int = 1
    #: sustained NIC bandwidth, bytes per second (full-duplex links; each
    #: direction charges the *sending* NIC).
    network_bandwidth: float = 100 * MB
    #: one-way propagation latency per message, seconds (not holding the NIC).
    network_latency: float = 0.0002
    #: per-message NIC setup/interrupt overhead, seconds (holding the NIC).
    nic_overhead: float = 0.00005
    #: size of a request/acknowledgement message header, bytes.
    request_bytes: int = 128
    #: whether the skew monitor runs (``nodes > 1`` only).
    rebalance: bool = True
    #: how often (simulated seconds) the skew monitor re-examines the volumes.
    rebalance_interval: float = 5.0
    #: migrate when the busiest volume carries more than this multiple of the
    #: mean per-volume load over the last interval.
    imbalance_threshold: float = 2.0
    #: also migrate off any volume whose free-block fraction drops below this.
    free_space_low_water: float = 0.10
    #: upper bound on file migrations per monitor round.
    max_migrations_per_round: int = 8
    #: durable metadata tier: journal routing flips and migration state in a
    #: write-ahead log, periodically folded into an atomically rewritten
    #: manifest, so a crashed node recovers its routing table at mount time.
    metadata: bool = True
    #: WAL implementation name in the assembly registry ("wal" kind).
    wal_kind: str = "group-commit"
    #: manifest-store implementation name ("manifest" kind).
    manifest_kind: str = "atomic-rewrite"
    #: group commit becomes due after this many buffered records ...
    wal_commit_records: int = 8
    #: ... or this many buffered bytes ...
    wal_commit_bytes: int = 4 * KB
    #: ... or this much simulated time since the previous commit (the
    #: interval daemon; only spawned once something is journalled).
    wal_commit_interval: float = 1.0
    #: False = commit after every record (no batching; for comparison runs).
    wal_group_commit: bool = True
    #: fold the WAL into the manifest once the log file passes this size.
    wal_checkpoint_bytes: int = 64 * KB
    #: per-operation latency of the (simulated) metadata device, seconds.
    metadata_latency: float = 0.0002
    #: bandwidth of the metadata device, bytes per second.
    metadata_bandwidth: float = 20 * MB
    #: shard the event loop by node (per-node sub-queues with a deterministic
    #: cross-node merge).  Always safe with ``nodes > 1``: the schedule is a
    #: pure function of the workload either way.  ``False`` keeps the single
    #: global heap (the sequential reference the sharded loop is pinned to).
    sharded_loop: bool = True
    #: run each node's sub-queue in a worker process (``core.parallel``);
    #: requires a node-partitioned workload (``client_entry="home"``, the
    #: ``node`` placement, rebalancing off).
    parallel: bool = False
    #: worker-process cap for ``parallel`` runs; 0 = one worker per node.
    jobs: int = 0
    #: where client requests enter the cluster: ``"front-end"`` (node 0
    #: issues everything, the paper's shape) or ``"home"`` (each client is
    #: pinned round-robin to a node and its I/O starts there).
    client_entry: str = "front-end"
    #: extra copies kept of every file (0 = no replication, the pre-existing
    #: single-copy stack, byte-identical by construction).  Replica ``i`` of
    #: a file homes on the next nodes after its primary's node (the next
    #: volumes on a one-node cluster), so no two copies ever share a volume
    #: — or a node, when there are enough nodes.  Writes fan out to every
    #: copy (charged over the serving nodes' NICs); reads fail over to a
    #: surviving copy when the fault harness kills a volume or node.
    replicas: int = 0
    #: run the :class:`~repro.core.cluster.replication.ReplicationRepairer`
    #: daemon (``replicas > 0`` only): re-replicates under-replicated files
    #: and flips dead primaries onto surviving copies after a fault.
    repair: bool = True
    #: how often (simulated seconds) the repairer checks for new faults.
    repair_interval: float = 1.0
    #: concurrent repair threads per scan.  1 (the default) repairs files
    #: strictly in id order; higher values shard the scan round-robin
    #: across worker threads so re-replication overlaps disk queueing —
    #: how a real cluster races the next failure.
    repair_workers: int = 1

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ConfigurationError("a cluster needs at least one node")
        if self.jobs < 0:
            raise ConfigurationError("jobs cannot be negative")
        if self.client_entry not in ("front-end", "home"):
            raise ConfigurationError(
                f"unknown client_entry {self.client_entry!r} (want 'front-end' or 'home')"
            )
        if self.parallel and not self.sharded_loop:
            raise ConfigurationError("parallel replay requires the sharded event loop")
        if self.network_bandwidth <= 0:
            raise ConfigurationError("network bandwidth must be positive")
        if self.network_latency < 0 or self.nic_overhead < 0:
            raise ConfigurationError("network latency/overhead cannot be negative")
        if self.request_bytes < 1:
            raise ConfigurationError("request_bytes must be positive")
        if self.rebalance_interval <= 0:
            raise ConfigurationError("rebalance_interval must be positive")
        if self.imbalance_threshold < 1.0:
            raise ConfigurationError("imbalance_threshold must be at least 1.0")
        if not (0.0 <= self.free_space_low_water < 1.0):
            raise ConfigurationError("free_space_low_water must be in [0, 1)")
        if self.max_migrations_per_round < 1:
            raise ConfigurationError("max_migrations_per_round must be positive")
        if self.wal_kind != "group-commit" and not _is_registered("wal", self.wal_kind):
            raise ConfigurationError(f"unknown WAL implementation {self.wal_kind!r}")
        if self.manifest_kind != "atomic-rewrite" and not _is_registered(
            "manifest", self.manifest_kind
        ):
            raise ConfigurationError(
                f"unknown manifest implementation {self.manifest_kind!r}"
            )
        if self.wal_commit_records < 1:
            raise ConfigurationError("wal_commit_records must be positive")
        if self.wal_commit_bytes < 1:
            raise ConfigurationError("wal_commit_bytes must be positive")
        if self.wal_commit_interval <= 0:
            raise ConfigurationError("wal_commit_interval must be positive")
        if self.wal_checkpoint_bytes < 1:
            raise ConfigurationError("wal_checkpoint_bytes must be positive")
        if self.metadata_latency < 0 or self.metadata_bandwidth < 0:
            raise ConfigurationError("metadata device costs cannot be negative")
        if not (0 <= self.replicas <= 6):
            # The WAL packs a replica set into one i64 argument: up to seven
            # 8-bit volume slots, so at most 6 extra copies.
            raise ConfigurationError("replicas must be between 0 and 6")
        if self.replicas > 0 and self.parallel:
            raise ConfigurationError(
                "replication is not supported under the parallel executor "
                "(replica writes cross the node partition)"
            )
        if self.repair_interval <= 0:
            raise ConfigurationError("repair_interval must be positive")
        if self.repair_workers < 1:
            raise ConfigurationError("repair_workers must be positive")


@dataclass(frozen=True)
class SimulationConfig:
    """Complete configuration of a Patsy simulation run."""

    cache: CacheConfig = field(default_factory=CacheConfig)
    flush: FlushConfig = field(default_factory=FlushConfig)
    layout: LayoutConfig = field(default_factory=LayoutConfig)
    host: HostConfig = field(default_factory=HostConfig)
    #: multi-volume storage array; None keeps the classic single-volume
    #: assembly (one cache, one volume over all of the host's disks).
    array: Optional[ArrayConfig] = None
    #: multi-machine cluster tier; None (or ``nodes=1``) keeps everything on
    #: one machine.  Each node runs the ``array`` complement (or a
    #: single-volume stack when ``array`` is None).
    cluster: Optional[ClusterConfig] = None
    #: random seed for the scheduler and any synthesised parameters.
    seed: int = 0
    #: emit interval statistics every this many seconds of simulated time
    #: (the paper reports every 15 minutes).
    report_interval: float = 900.0
    #: stop the simulation after this much simulated time (None = run the
    #: whole trace).
    max_simulated_time: Optional[float] = None
    #: replay traces through the streaming engine: records are pulled from
    #: the source one at a time and demultiplexed into per-client threads
    #: without materialising the trace (memory stays O(clients + skew)
    #: instead of O(records)).  The materialised path remains the default
    #: for small tests.
    streaming: bool = False

    def with_flush(self, flush: FlushConfig) -> "SimulationConfig":
        """A copy of this configuration with a different flush policy."""
        return replace(self, flush=flush)


def sprite_server_config(scale: float = 1.0, seed: int = 0) -> SimulationConfig:
    """Configuration modelled on the traced Sprite file server.

    The original machine was a Sun 4/280 with 128 MB of main memory and ten
    disks on three SCSI buses (Section 5.1).  ``scale`` shrinks the memory
    sizes (cache and NVRAM) proportionally so that scaled-down synthetic
    traces exercise the same regimes — the published experiments depend on
    the *ratio* of NVRAM to cache and of working set to cache, not on the
    absolute 1996 sizes.
    """
    if scale <= 0 or scale > 1.0:
        raise ConfigurationError("scale must be in (0, 1]")
    cache_bytes = max(int(128 * MB * scale), 64 * DEFAULT_BLOCK_SIZE)
    nvram_bytes = max(int(4 * MB * scale), 8 * DEFAULT_BLOCK_SIZE)
    return SimulationConfig(
        cache=CacheConfig(size_bytes=cache_bytes),
        flush=FlushConfig(policy="periodic", nvram_bytes=nvram_bytes),
        layout=LayoutConfig(kind="lfs"),
        host=HostConfig(num_disks=10, num_buses=3),
        seed=seed,
    )


def sun4_280_config(
    scale: float = 1.0,
    seed: int = 0,
    volumes: int = 5,
    placement: str = "hash",
    num_disks: int = 10,
    buses: int = 3,
) -> SimulationConfig:
    """The paper's evaluation machine as a storage array.

    A Sun 4/280 file server with ten HP 97560 disks on three SCSI-2 buses
    (Section 5.1), modelled as ``volumes`` independent volumes (the real
    machine carved the ten disks into fourteen file systems) with per-volume
    cache shards and flush daemons.  ``scale`` shrinks the memory sizes
    exactly as in :func:`sprite_server_config`.
    """
    if scale <= 0 or scale > 1.0:
        raise ConfigurationError("scale must be in (0, 1]")
    cache_bytes = max(int(128 * MB * scale), 64 * DEFAULT_BLOCK_SIZE * max(volumes, 1))
    nvram_bytes = max(int(4 * MB * scale), 8 * DEFAULT_BLOCK_SIZE * max(volumes, 1))
    return SimulationConfig(
        cache=CacheConfig(size_bytes=cache_bytes),
        flush=FlushConfig(policy="periodic", nvram_bytes=nvram_bytes),
        layout=LayoutConfig(kind="lfs"),
        host=HostConfig(num_disks=num_disks, num_buses=buses),
        array=ArrayConfig(
            volumes=volumes,
            buses=buses,
            disks_per_bus=-(-num_disks // buses),
            num_disks=num_disks,
            placement=placement,
        ),
        seed=seed,
    )


def cluster_config(
    nodes: int = 4,
    scale: float = 1.0,
    seed: int = 0,
    volumes_per_node: int = 2,
    disks_per_node: int = 2,
    buses_per_node: int = 1,
    placement: str = "directory",
    rebalance: bool = True,
    network_bandwidth: float = 100 * MB,
    replicas: int = 0,
) -> SimulationConfig:
    """An N-node cluster of small storage servers behind one front end.

    Each node runs ``volumes_per_node`` volumes over ``disks_per_node``
    disks on ``buses_per_node`` SCSI buses; node 0 is the front end and the
    other nodes' volumes are reached over simulated network links.  The
    cache and NVRAM scale with the node count so per-volume shards keep a
    workable size; ``scale`` shrinks memory exactly as in
    :func:`sprite_server_config`.
    """
    if scale <= 0 or scale > 1.0:
        raise ConfigurationError("scale must be in (0, 1]")
    total_volumes = max(nodes * volumes_per_node, 1)
    cache_bytes = max(int(128 * MB * scale), 64 * DEFAULT_BLOCK_SIZE * total_volumes)
    nvram_bytes = max(int(4 * MB * scale), 8 * DEFAULT_BLOCK_SIZE * total_volumes)
    return SimulationConfig(
        cache=CacheConfig(size_bytes=cache_bytes),
        flush=FlushConfig(policy="periodic", nvram_bytes=nvram_bytes),
        layout=LayoutConfig(kind="lfs"),
        host=HostConfig(num_disks=disks_per_node, num_buses=buses_per_node),
        array=ArrayConfig(
            volumes=volumes_per_node,
            buses=buses_per_node,
            disks_per_bus=-(-disks_per_node // buses_per_node),
            num_disks=disks_per_node,
            placement=placement,
        ),
        cluster=ClusterConfig(
            nodes=nodes,
            rebalance=rebalance,
            network_bandwidth=network_bandwidth,
            replicas=replicas,
        ),
        seed=seed,
    )


def small_test_config(seed: int = 0) -> SimulationConfig:
    """A deliberately tiny configuration for unit tests: one disk, one bus,
    a 64-block cache and an 8-block NVRAM."""
    return SimulationConfig(
        cache=CacheConfig(size_bytes=64 * DEFAULT_BLOCK_SIZE),
        flush=FlushConfig(policy="periodic", nvram_bytes=8 * DEFAULT_BLOCK_SIZE),
        layout=LayoutConfig(segment_size=16 * DEFAULT_BLOCK_SIZE),
        host=HostConfig(num_disks=1, num_buses=1),
        seed=seed,
        report_interval=60.0,
    )
