"""Configuration objects for instantiating file systems and simulators.

The cut-and-paste framework is assembled from components at start-up; these
dataclasses are the "wiring lists" used by the two instantiations
(:class:`repro.pfs.filesystem.PegasusFileSystem` and
:class:`repro.patsy.simulator.PatsySimulator`).  They deliberately mirror the
knobs discussed in the paper: cache size and flush policy (Section 5.1),
storage layout and segment size (Section 2), the disk/bus complement of the
simulated Sprite file server (Section 5.1), and so on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import ConfigurationError
from repro.units import DEFAULT_BLOCK_SIZE, KB, MB

__all__ = [
    "CacheConfig",
    "FlushConfig",
    "LayoutConfig",
    "HostConfig",
    "SimulationConfig",
    "sprite_server_config",
    "small_test_config",
]


@dataclass(frozen=True)
class CacheConfig:
    """File-system block cache configuration."""

    size_bytes: int = 8 * MB
    block_size: int = DEFAULT_BLOCK_SIZE
    #: replacement policy: "lru", "random", "lfu", "slru", "lru-k",
    #: "clock", "2q" or "arc" (see :mod:`repro.core.replacement`).
    replacement: str = "lru"
    #: fraction of the cache protected by SLRU (only used by "slru").
    slru_protected_fraction: float = 0.5
    #: K parameter for LRU-K replacement.
    lru_k: int = 2
    #: fraction of the cache given to 2Q's A1in FIFO (only used by "2q").
    twoq_in_fraction: float = 0.25
    #: size of 2Q's A1out ghost FIFO as a fraction of the cache.
    twoq_out_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ConfigurationError("block_size must be positive")
        if self.size_bytes < self.block_size:
            raise ConfigurationError("cache must hold at least one block")
        if self.replacement not in {
            "lru",
            "random",
            "lfu",
            "slru",
            "lru-k",
            "clock",
            "2q",
            "arc",
        }:
            raise ConfigurationError(f"unknown replacement policy {self.replacement!r}")
        # Policy parameters are validated only for the selected policy:
        # the knobs are documented as "only used by" their policy, and a
        # config that never reads a value must not be rejected over it.
        if self.replacement == "slru" and not (0.0 < self.slru_protected_fraction < 1.0):
            raise ConfigurationError("slru_protected_fraction must be in (0, 1)")
        if self.replacement == "2q" and (
            not (0.0 < self.twoq_in_fraction < 1.0) or self.twoq_out_fraction <= 0.0
        ):
            raise ConfigurationError("2Q fractions must be positive (in_fraction < 1)")

    @property
    def num_blocks(self) -> int:
        return self.size_bytes // self.block_size


@dataclass(frozen=True)
class FlushConfig:
    """Delayed-write (cache flush) policy configuration.

    ``policy`` selects between the experiments of Section 5.1:

    * ``"periodic"`` — the Unix 30-second-update baseline,
    * ``"ups"`` — write-saving: flush only when out of non-dirty blocks,
    * ``"nvram"`` — dirty data confined to an NVRAM buffer of
      ``nvram_bytes``; when full, flush the oldest dirty block
      (``whole_file=False``) or its whole file (``whole_file=True``).
    """

    policy: str = "periodic"
    update_interval: float = 30.0
    scan_interval: float = 5.0
    nvram_bytes: int = 4 * MB
    whole_file: bool = True
    #: flush in a separate daemon thread (the Section 5.2 lesson) rather than
    #: synchronously in the thread that needed a block.
    asynchronous: bool = True
    #: free-block low-water mark for the asynchronous daemon, as a fraction
    #: of the cache: when woken by allocation pressure the daemon keeps
    #: flushing until this many blocks are allocatable again, so bursts of
    #: allocations are absorbed without one wakeup per request.  0 keeps the
    #: strict flush-on-demand behaviour (required by the UPS write-saving
    #: policy, which must never write ahead of real pressure).
    daemon_low_water: float = 0.0

    def __post_init__(self) -> None:
        if self.policy not in {"periodic", "ups", "nvram"}:
            raise ConfigurationError(f"unknown flush policy {self.policy!r}")
        if self.update_interval <= 0 or self.scan_interval <= 0:
            raise ConfigurationError("flush intervals must be positive")
        if self.nvram_bytes <= 0:
            raise ConfigurationError("nvram_bytes must be positive")
        if not (0.0 <= self.daemon_low_water < 1.0):
            raise ConfigurationError("daemon_low_water must be in [0, 1)")


@dataclass(frozen=True)
class LayoutConfig:
    """Storage-layout configuration (segmented LFS by default)."""

    kind: str = "lfs"
    segment_size: int = 256 * KB
    #: start cleaning when the fraction of free segments drops below this.
    cleaner_low_water: float = 0.2
    #: stop cleaning when the fraction of free segments rises above this.
    cleaner_high_water: float = 0.4
    #: cleaner policy: "greedy" or "cost-benefit".
    cleaner_policy: str = "cost-benefit"
    #: FFS-style layout parameters (used when kind == "ffs").
    cylinder_group_size: int = 2 * MB

    def __post_init__(self) -> None:
        if self.kind not in {"lfs", "ffs"}:
            raise ConfigurationError(f"unknown storage layout {self.kind!r}")
        if self.segment_size <= 0:
            raise ConfigurationError("segment_size must be positive")
        if not (0.0 <= self.cleaner_low_water < self.cleaner_high_water <= 1.0):
            raise ConfigurationError("cleaner water marks must satisfy 0 <= low < high <= 1")
        if self.cleaner_policy not in {"greedy", "cost-benefit"}:
            raise ConfigurationError(f"unknown cleaner policy {self.cleaner_policy!r}")


@dataclass(frozen=True)
class HostConfig:
    """Host and I/O sub-system configuration for a simulated machine."""

    num_disks: int = 1
    num_buses: int = 1
    disk_model: str = "hp97560"
    #: SCSI-2 sustained transfer rate, bytes per second.
    bus_bandwidth: float = 10 * MB
    #: per-transaction bus arbitration + selection overhead, seconds.
    bus_overhead: float = 0.0002
    #: host memory copy bandwidth, bytes per second (used to charge for the
    #: buffer copies that the simulator cannot perform for real).
    memory_copy_bandwidth: float = 80 * MB
    #: disk queue scheduling policy: "fcfs", "scan", "cscan", "look", "clook".
    io_scheduler: str = "clook"

    def __post_init__(self) -> None:
        if self.num_disks < 1 or self.num_buses < 1:
            raise ConfigurationError("need at least one disk and one bus")
        if self.num_buses > self.num_disks:
            raise ConfigurationError("more buses than disks makes no sense")
        if self.io_scheduler not in {"fcfs", "scan", "cscan", "look", "clook", "scan-edf"}:
            raise ConfigurationError(f"unknown I/O scheduler {self.io_scheduler!r}")

    def bus_for_disk(self, disk_index: int) -> int:
        """Disks are spread round-robin over the available buses."""
        return disk_index % self.num_buses


@dataclass(frozen=True)
class SimulationConfig:
    """Complete configuration of a Patsy simulation run."""

    cache: CacheConfig = field(default_factory=CacheConfig)
    flush: FlushConfig = field(default_factory=FlushConfig)
    layout: LayoutConfig = field(default_factory=LayoutConfig)
    host: HostConfig = field(default_factory=HostConfig)
    #: random seed for the scheduler and any synthesised parameters.
    seed: int = 0
    #: emit interval statistics every this many seconds of simulated time
    #: (the paper reports every 15 minutes).
    report_interval: float = 900.0
    #: stop the simulation after this much simulated time (None = run the
    #: whole trace).
    max_simulated_time: Optional[float] = None
    #: replay traces through the streaming engine: records are pulled from
    #: the source one at a time and demultiplexed into per-client threads
    #: without materialising the trace (memory stays O(clients + skew)
    #: instead of O(records)).  The materialised path remains the default
    #: for small tests.
    streaming: bool = False

    def with_flush(self, flush: FlushConfig) -> "SimulationConfig":
        """A copy of this configuration with a different flush policy."""
        return replace(self, flush=flush)


def sprite_server_config(scale: float = 1.0, seed: int = 0) -> SimulationConfig:
    """Configuration modelled on the traced Sprite file server.

    The original machine was a Sun 4/280 with 128 MB of main memory and ten
    disks on three SCSI buses (Section 5.1).  ``scale`` shrinks the memory
    sizes (cache and NVRAM) proportionally so that scaled-down synthetic
    traces exercise the same regimes — the published experiments depend on
    the *ratio* of NVRAM to cache and of working set to cache, not on the
    absolute 1996 sizes.
    """
    if scale <= 0 or scale > 1.0:
        raise ConfigurationError("scale must be in (0, 1]")
    cache_bytes = max(int(128 * MB * scale), 64 * DEFAULT_BLOCK_SIZE)
    nvram_bytes = max(int(4 * MB * scale), 8 * DEFAULT_BLOCK_SIZE)
    return SimulationConfig(
        cache=CacheConfig(size_bytes=cache_bytes),
        flush=FlushConfig(policy="periodic", nvram_bytes=nvram_bytes),
        layout=LayoutConfig(kind="lfs"),
        host=HostConfig(num_disks=10, num_buses=3),
        seed=seed,
    )


def small_test_config(seed: int = 0) -> SimulationConfig:
    """A deliberately tiny configuration for unit tests: one disk, one bus,
    a 64-block cache and an 8-block NVRAM."""
    return SimulationConfig(
        cache=CacheConfig(size_bytes=64 * DEFAULT_BLOCK_SIZE),
        flush=FlushConfig(policy="periodic", nvram_bytes=8 * DEFAULT_BLOCK_SIZE),
        layout=LayoutConfig(segment_size=16 * DEFAULT_BLOCK_SIZE),
        host=HostConfig(num_disks=1, num_buses=1),
        seed=seed,
        report_interval=60.0,
    )
