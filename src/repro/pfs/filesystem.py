"""The Pegasus File-System: a synchronous facade over the framework.

A PFS instance wires the shared components (cache, LFS or FFS layout, flush
policy, cleaner) on top of a *real* disk back-end that moves real bytes —
either an in-memory store or an ordinary Unix file, as in the paper.  The
facade drives the cooperative scheduler to completion for every call, so
ordinary Python code (and the NFS front-end) can use the file system without
knowing about threads or generators.

The same algorithm objects that ran inside Patsy run here unchanged; only
the helper components underneath differ.  That is the paper's central point:
"we did not have to change anything in the code except for some small
additions when data was actually moved."
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Dict, Generator, Optional, Union

from repro.assembly.bindings import OnlineBinding
from repro.assembly.builder import StorageStack, build_stack
from repro.assembly.spec import StackSpec
from repro.config import ArrayConfig, CacheConfig, FlushConfig, HostConfig, LayoutConfig
from repro.core.storage.array import RoutedLayout
from repro.errors import ConfigurationError
from repro.units import MB

__all__ = ["PegasusFileSystem"]


class PegasusFileSystem:
    """An on-line file system storing real data.

    The stack is assembled by :func:`repro.assembly.builder.build_stack`
    from a :class:`~repro.assembly.spec.StackSpec` under an
    :class:`~repro.assembly.bindings.OnlineBinding` — the *same* builder,
    spec and component classes that PATSY simulates, bound to drivers that
    move real bytes.  That includes multi-volume array specs: a PFS can
    mount the ``sun4_280`` five-volume stack with per-shard caches and
    flush daemons, exactly as the simulator runs it.

    Parameters
    ----------
    backing:
        ``None`` for in-memory disks, or a path to the Unix file used as
        the disk back-end (a single-disk spec uses the bare path; every
        disk ``i`` of a multi-disk spec lands in ``<backing>.d<i>``).
    size_bytes:
        Capacity of the backing store, split over the spec's disks.
    cache, flush, layout, array, io_scheduler, seed:
        Legacy piecewise configuration (framework defaults when omitted);
        kept as a thin shim that builds the equivalent ``spec``.
    spec:
        The full stack description.  When given it wins over the piecewise
        keywords above.
    real_time:
        Use wall-clock time instead of virtual time.  Virtual time is the
        default: the same code runs, but tests and examples finish instantly.
    """

    def __init__(
        self,
        backing: Optional[Union[str, Path]] = None,
        size_bytes: int = 64 * MB,
        cache: Optional[CacheConfig] = None,
        flush: Optional[FlushConfig] = None,
        layout: Optional[LayoutConfig] = None,
        real_time: bool = False,
        io_scheduler: str = "clook",
        seed: int = 0,
        array: Optional[ArrayConfig] = None,
        spec: Optional[StackSpec] = None,
    ):
        if spec is None:
            spec = StackSpec(
                cache=cache if cache is not None else CacheConfig(size_bytes=2 * MB),
                flush=flush if flush is not None else FlushConfig(policy="periodic"),
                layout=layout if layout is not None else LayoutConfig(),
                host=HostConfig(io_scheduler=io_scheduler),
                array=array,
                seed=seed,
            )
        elif (
            any(piece is not None for piece in (cache, flush, layout, array))
            or io_scheduler != "clook"
            or seed != 0
        ):
            raise ConfigurationError(
                "pass either a full `spec` or the piecewise "
                "cache/flush/layout/array/io_scheduler/seed keywords, not both"
            )
        self.spec = spec
        # Deprecation shims: the sub-configs used to be stored piecewise.
        self.cache_config = spec.cache
        self.flush_config = spec.flush
        self.layout_config = spec.layout

        binding = OnlineBinding(backing=backing, size_bytes=size_bytes, real_time=real_time)
        stack = build_stack(spec, binding)
        self.stack = stack
        self.scheduler = stack.scheduler
        self.drivers = stack.drivers
        #: deprecation shim: the first (often only) disk driver.
        self.driver = stack.drivers[0]
        self.volume = stack.volume
        self.layout = stack.layout
        self.cache = stack.cache
        self.datamover = stack.datamover
        self.flush_policy = stack.flush_policy
        self.cleaner = stack.cleaner
        self.placement = stack.placement
        self.fs = stack.fs
        self.client = stack.client
        self._mounted = False

    @classmethod
    def from_spec(
        cls,
        spec: StackSpec,
        backing: Optional[Union[str, Path]] = None,
        size_bytes: int = 64 * MB,
        real_time: bool = False,
    ) -> "PegasusFileSystem":
        """A PFS running ``spec`` — the same object a simulator replays."""
        return cls(backing=backing, size_bytes=size_bytes, real_time=real_time, spec=spec)

    # ------------------------------------------------------------------ scheduler plumbing

    def run(self, target: Callable[..., Generator[Any, Any, Any]], *args: Any, **kwargs: Any) -> Any:
        """Run one framework operation to completion and return its result."""
        thread = self.scheduler.spawn(target, *args, name=getattr(target, "__name__", "op"), **kwargs)
        return self.scheduler.run_until_complete(thread)

    # ------------------------------------------------------------------ lifecycle

    def format(self) -> None:
        """Create an empty file system on the backing store and mount it."""
        self.run(self.fs.mount, True)
        self._mounted = True

    def mount(self) -> None:
        """Mount an existing file system from the backing store."""
        self.run(self.fs.mount, False)
        self._mounted = True

    def unmount(self) -> None:
        """Flush everything and write a checkpoint."""
        self.run(self.fs.unmount)
        self._mounted = False

    def sync(self) -> int:
        """Flush all dirty data; returns the number of blocks written."""
        return self.run(self.fs.sync)

    @property
    def mounted(self) -> bool:
        return self._mounted

    # ------------------------------------------------------------------ file operations

    def create(self, path: str) -> None:
        handle = self.run(self.client.create, path)
        self.run(self.client.close, handle)

    def write_file(self, path: str, data: bytes, offset: int = 0) -> int:
        return self.run(self.client.write_file, path, offset, data)

    def read_file(self, path: str, offset: int = 0, length: Optional[int] = None) -> bytes:
        if length is None:
            length = self.stat(path)["size"] - offset
        if length <= 0:
            return b""
        return self.run(self.client.read_file, path, offset, length)

    def append(self, path: str, data: bytes) -> int:
        size = self.stat(path)["size"] if self.exists(path) else 0
        return self.run(self.client.write_file, path, size, data)

    def truncate(self, path: str, new_size: int) -> None:
        self.run(self.client.truncate_path, path, new_size)

    def delete(self, path: str) -> None:
        self.run(self.client.unlink, path)

    def rename(self, old_path: str, new_path: str) -> None:
        self.run(self.client.rename, old_path, new_path)

    def stat(self, path: str) -> Dict[str, Any]:
        return self.run(self.client.stat, path)

    def exists(self, path: str) -> bool:
        return self.run(self.client.exists, path)

    # ------------------------------------------------------------------ directories & links

    def mkdir(self, path: str) -> None:
        self.run(self.client.mkdir, path)

    def makedirs(self, path: str) -> None:
        """Create a directory and any missing parents."""
        parts = [p for p in path.split("/") if p]
        current = ""
        for part in parts:
            current = f"{current}/{part}"
            if not self.exists(current):
                self.mkdir(current)

    def rmdir(self, path: str) -> None:
        self.run(self.client.rmdir, path)

    def listdir(self, path: str = "/") -> list[str]:
        entries = self.run(self.client.readdir, path)
        return sorted(entries)

    def symlink(self, target: str, path: str) -> None:
        self.run(self.client.symlink, target, path)

    def readlink(self, path: str) -> str:
        return self.run(self.client.readlink, path)

    # ------------------------------------------------------------------ handle-based interface

    def open(self, path: str, create: bool = False) -> int:
        return self.run(self.client.open, path, create)

    def close(self, handle: int) -> None:
        self.run(self.client.close, handle)

    def read(self, handle: int, offset: int, length: int) -> bytes:
        return self.run(self.client.read, handle, offset, length)

    def write(self, handle: int, offset: int, data: bytes) -> int:
        return self.run(self.client.write, handle, offset, data)

    def fsync(self, handle: int) -> int:
        return self.run(self.client.fsync, handle)

    def create_multimedia(self, path: str) -> int:
        """Create/open a continuous-media file (demonstrates per-type policy)."""
        return self.run(self.client.open_multimedia, path)

    # ------------------------------------------------------------------ introspection

    def statistics(self) -> Dict[str, Any]:
        """Cache, layout and driver statistics for monitoring."""
        if isinstance(self.layout, RoutedLayout):
            combined = self.layout.combined_stats()
            layout_stats = {
                "disk_reads": combined.get("disk_reads", 0),
                "disk_writes": combined.get("disk_writes", 0),
                "blocks_written": combined.get("blocks_written", 0),
                "free_blocks": self.layout.free_blocks,
            }
        else:
            layout_stats = {
                "disk_reads": self.layout.stats.disk_reads,
                "disk_writes": self.layout.stats.disk_writes,
                "blocks_written": self.layout.stats.blocks_written,
                "free_blocks": self.layout.free_blocks,
            }
        stats: Dict[str, Any] = {
            "cache": self.cache.stats.snapshot(),
            "layout": layout_stats,
            "driver": {
                "reads": sum(d.stats.reads for d in self.drivers),
                "writes": sum(d.stats.writes for d in self.drivers),
                "mean_queue_length": (
                    sum(d.stats.mean_queue_length() for d in self.drivers)
                    / len(self.drivers)
                ),
            },
            "open_files": self.fs.file_table.open_count,
            "loaded_files": self.fs.file_table.loaded_count,
        }
        if self.spec.array is not None:
            stats["volumes"] = self.spec.array.volumes
        return stats

    def close_backing(self) -> None:
        """Release the backing files (file-backed instances only)."""
        for driver in self.drivers:
            close = getattr(driver, "close", None)
            if callable(close):
                close()

    def __repr__(self) -> str:
        return (
            f"PegasusFileSystem(layout={self.layout.name}, mounted={self._mounted}, "
            f"capacity={self.volume.total_blocks} blocks)"
        )
