"""The Pegasus File-System: a synchronous facade over the framework.

A PFS instance wires the shared components (cache, LFS or FFS layout, flush
policy, cleaner) on top of a *real* disk back-end that moves real bytes —
either an in-memory store or an ordinary Unix file, as in the paper.  The
facade drives the cooperative scheduler to completion for every call, so
ordinary Python code (and the NFS front-end) can use the file system without
knowing about threads or generators.

The same algorithm objects that ran inside Patsy run here unchanged; only
the helper components underneath differ.  That is the paper's central point:
"we did not have to change anything in the code except for some small
additions when data was actually moved."
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Dict, Generator, Optional, Union

from repro.config import CacheConfig, FlushConfig, LayoutConfig
from repro.core.cache import BlockCache
from repro.core.client import AbstractClientInterface
from repro.core.clock import RealClock, VirtualClock
from repro.core.datamover import DataMover
from repro.core.filesystem import FileSystem
from repro.core.flush import make_flush_policy
from repro.core.inode import FileKind
from repro.core.iosched import make_io_scheduler
from repro.core.scheduler import Scheduler
from repro.core.storage.cleaner import CleanerDaemon, make_cleaner
from repro.core.storage.ffs import FfsLikeLayout
from repro.core.storage.lfs import LogStructuredLayout
from repro.core.storage.volume import Volume
from repro.pfs.diskfile import FileBackedDiskDriver, MemoryBackedDiskDriver
from repro.units import MB

__all__ = ["PegasusFileSystem"]


class PegasusFileSystem:
    """An on-line file system storing real data.

    Parameters
    ----------
    backing:
        ``None`` for an in-memory disk, or a path to the Unix file used as
        the disk back-end.
    size_bytes:
        Capacity of the backing store.
    cache, flush, layout:
        Component configurations (framework defaults when omitted).
    real_time:
        Use wall-clock time instead of virtual time.  Virtual time is the
        default: the same code runs, but tests and examples finish instantly.
    """

    def __init__(
        self,
        backing: Optional[Union[str, Path]] = None,
        size_bytes: int = 64 * MB,
        cache: Optional[CacheConfig] = None,
        flush: Optional[FlushConfig] = None,
        layout: Optional[LayoutConfig] = None,
        real_time: bool = False,
        io_scheduler: str = "clook",
        seed: int = 0,
    ):
        self.cache_config = cache if cache is not None else CacheConfig(size_bytes=2 * MB)
        self.flush_config = flush if flush is not None else FlushConfig(policy="periodic")
        self.layout_config = layout if layout is not None else LayoutConfig()
        clock = RealClock() if real_time else VirtualClock()
        self.scheduler = Scheduler(clock=clock, seed=seed)

        if backing is None:
            self.driver = MemoryBackedDiskDriver(
                self.scheduler, size_bytes=size_bytes, io_scheduler=make_io_scheduler(io_scheduler)
            )
        else:
            self.driver = FileBackedDiskDriver(
                self.scheduler,
                backing,
                size_bytes=size_bytes,
                io_scheduler=make_io_scheduler(io_scheduler),
            )
        self.volume = Volume([self.driver], block_size=self.cache_config.block_size)
        self.layout = self._build_layout(seed)
        self.cache = BlockCache(self.scheduler, self.cache_config, with_data=True)
        self.datamover = DataMover(charge_time=False)
        self.flush_policy = make_flush_policy(self.flush_config)
        cleaner = None
        if isinstance(self.layout, LogStructuredLayout):
            cleaner = CleanerDaemon(
                self.scheduler,
                self.layout,
                make_cleaner(
                    self.layout_config.cleaner_policy,
                    self.layout_config.cleaner_age_scale,
                ),
                low_water=self.layout_config.cleaner_low_water,
                high_water=self.layout_config.cleaner_high_water,
            )
        self.fs = FileSystem(
            self.scheduler,
            self.cache,
            self.layout,
            self.datamover,
            flush_policy=self.flush_policy,
            cleaner=cleaner,
        )
        self.client = AbstractClientInterface(self.fs, auto_materialize=False)
        self._mounted = False

    def _build_layout(self, seed: int):
        if self.layout_config.kind == "lfs":
            return LogStructuredLayout(
                self.scheduler,
                self.volume,
                block_size=self.cache_config.block_size,
                segment_blocks=max(
                    self.layout_config.segment_size // self.cache_config.block_size, 4
                ),
                simulated=False,
                seed=seed,
            )
        return FfsLikeLayout(
            self.scheduler,
            self.volume,
            block_size=self.cache_config.block_size,
            simulated=False,
            seed=seed,
        )

    # ------------------------------------------------------------------ scheduler plumbing

    def run(self, target: Callable[..., Generator[Any, Any, Any]], *args: Any, **kwargs: Any) -> Any:
        """Run one framework operation to completion and return its result."""
        thread = self.scheduler.spawn(target, *args, name=getattr(target, "__name__", "op"), **kwargs)
        return self.scheduler.run_until_complete(thread)

    # ------------------------------------------------------------------ lifecycle

    def format(self) -> None:
        """Create an empty file system on the backing store and mount it."""
        self.run(self.fs.mount, True)
        self._mounted = True

    def mount(self) -> None:
        """Mount an existing file system from the backing store."""
        self.run(self.fs.mount, False)
        self._mounted = True

    def unmount(self) -> None:
        """Flush everything and write a checkpoint."""
        self.run(self.fs.unmount)
        self._mounted = False

    def sync(self) -> int:
        """Flush all dirty data; returns the number of blocks written."""
        return self.run(self.fs.sync)

    @property
    def mounted(self) -> bool:
        return self._mounted

    # ------------------------------------------------------------------ file operations

    def create(self, path: str) -> None:
        handle = self.run(self.client.create, path)
        self.run(self.client.close, handle)

    def write_file(self, path: str, data: bytes, offset: int = 0) -> int:
        return self.run(self.client.write_file, path, offset, data)

    def read_file(self, path: str, offset: int = 0, length: Optional[int] = None) -> bytes:
        if length is None:
            length = self.stat(path)["size"] - offset
        if length <= 0:
            return b""
        return self.run(self.client.read_file, path, offset, length)

    def append(self, path: str, data: bytes) -> int:
        size = self.stat(path)["size"] if self.exists(path) else 0
        return self.run(self.client.write_file, path, size, data)

    def truncate(self, path: str, new_size: int) -> None:
        self.run(self.client.truncate_path, path, new_size)

    def delete(self, path: str) -> None:
        self.run(self.client.unlink, path)

    def rename(self, old_path: str, new_path: str) -> None:
        self.run(self.client.rename, old_path, new_path)

    def stat(self, path: str) -> Dict[str, Any]:
        return self.run(self.client.stat, path)

    def exists(self, path: str) -> bool:
        return self.run(self.client.exists, path)

    # ------------------------------------------------------------------ directories & links

    def mkdir(self, path: str) -> None:
        self.run(self.client.mkdir, path)

    def makedirs(self, path: str) -> None:
        """Create a directory and any missing parents."""
        parts = [p for p in path.split("/") if p]
        current = ""
        for part in parts:
            current = f"{current}/{part}"
            if not self.exists(current):
                self.mkdir(current)

    def rmdir(self, path: str) -> None:
        self.run(self.client.rmdir, path)

    def listdir(self, path: str = "/") -> list[str]:
        entries = self.run(self.client.readdir, path)
        return sorted(entries)

    def symlink(self, target: str, path: str) -> None:
        self.run(self.client.symlink, target, path)

    def readlink(self, path: str) -> str:
        return self.run(self.client.readlink, path)

    # ------------------------------------------------------------------ handle-based interface

    def open(self, path: str, create: bool = False) -> int:
        return self.run(self.client.open, path, create)

    def close(self, handle: int) -> None:
        self.run(self.client.close, handle)

    def read(self, handle: int, offset: int, length: int) -> bytes:
        return self.run(self.client.read, handle, offset, length)

    def write(self, handle: int, offset: int, data: bytes) -> int:
        return self.run(self.client.write, handle, offset, data)

    def fsync(self, handle: int) -> int:
        return self.run(self.client.fsync, handle)

    def create_multimedia(self, path: str) -> int:
        """Create/open a continuous-media file (demonstrates per-type policy)."""
        return self.run(self.client.open_multimedia, path)

    # ------------------------------------------------------------------ introspection

    def statistics(self) -> Dict[str, Any]:
        """Cache, layout and driver statistics for monitoring."""
        return {
            "cache": self.cache.stats.snapshot(),
            "layout": {
                "disk_reads": self.layout.stats.disk_reads,
                "disk_writes": self.layout.stats.disk_writes,
                "blocks_written": self.layout.stats.blocks_written,
                "free_blocks": self.layout.free_blocks,
            },
            "driver": {
                "reads": self.driver.stats.reads,
                "writes": self.driver.stats.writes,
                "mean_queue_length": self.driver.stats.mean_queue_length(),
            },
            "open_files": self.fs.file_table.open_count,
            "loaded_files": self.fs.file_table.loaded_count,
        }

    def close_backing(self) -> None:
        """Release the backing file (file-backed instances only)."""
        close = getattr(self.driver, "close", None)
        if callable(close):
            close()

    def __repr__(self) -> str:
        return (
            f"PegasusFileSystem(layout={self.layout.name}, mounted={self._mounted}, "
            f"capacity={self.volume.total_blocks} blocks)"
        )
