"""PFS: the on-line Pegasus File-System instantiation.

"The base components in the cut-and-paste library do not make up a complete
system: they lack interfaces to the environment.  To complete such a system,
helper components are added ... the system needs a real user interface, a
PFS client interface and it requires a real disk-driver to access a real
disk."  Here the helpers are a file- or memory-backed disk driver that moves
real bytes, a synchronous facade (:class:`PegasusFileSystem`) and an
NFS-style front-end (:mod:`repro.pfs.nfs`).
"""

from repro.pfs.diskfile import FileBackedDiskDriver, MemoryBackedDiskDriver
from repro.pfs.filesystem import PegasusFileSystem
from repro.pfs.nfs import NfsClientInterface, NfsLoopbackClient, NfsProcedure, NfsServer, NfsStatus

__all__ = [
    "FileBackedDiskDriver",
    "MemoryBackedDiskDriver",
    "PegasusFileSystem",
    "NfsClientInterface",
    "NfsLoopbackClient",
    "NfsProcedure",
    "NfsServer",
    "NfsStatus",
]
