"""Real disk drivers for the on-line PFS instantiation.

"Currently, only one disk-driver exists.  This driver implements a combined
read-write queue and schedules I/O requests through the C-LOOK scheduling
policy.  It uses a Unix-file (ordinary file, or raw-device) as back-end."

Two back-ends are provided: a Unix file (:class:`FileBackedDiskDriver`,
matching the paper) and an in-memory byte array
(:class:`MemoryBackedDiskDriver`) for tests and examples that should not
touch the host file system.  Both share the queueing/scheduling machinery of
:class:`repro.core.driver.DiskDriver`; an optional service-time model lets
them charge realistic latencies when run under a virtual clock.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Generator, Optional, Union

from repro.core.driver import DiskDriver, IOKind, IORequest
from repro.core.iosched import IoScheduler
from repro.core.scheduler import Scheduler
from repro.errors import DiskError
from repro.units import MB, SECTOR_SIZE

__all__ = ["MemoryBackedDiskDriver", "FileBackedDiskDriver"]


class _RealDiskDriver(DiskDriver):
    """Shared behaviour of the real (byte-moving) drivers."""

    def __init__(
        self,
        scheduler: Scheduler,
        name: str,
        num_sectors: int,
        io_scheduler: Optional[IoScheduler] = None,
        fixed_latency: float = 0.0,
        per_byte_time: float = 0.0,
    ):
        super().__init__(
            scheduler,
            name=name,
            io_scheduler=io_scheduler,
            num_sectors=num_sectors,
            sector_size=SECTOR_SIZE,
        )
        self.fixed_latency = fixed_latency
        self.per_byte_time = per_byte_time

    def _perform(self, request: IORequest) -> Generator[Any, Any, None]:
        service_time = self.fixed_latency + self.per_byte_time * request.nbytes
        if service_time > 0:
            yield from self.scheduler.sleep(service_time)
        if request.kind is IOKind.READ:
            data = self._read_bytes(request.sector * self.sector_size, request.nbytes)
            request.data = bytearray(data)
        else:
            payload = request.data if request.data is not None else bytes(request.nbytes)
            self._write_bytes(request.sector * self.sector_size, bytes(payload))

    # -- to be provided by concrete back-ends ------------------------------------

    def _read_bytes(self, offset: int, nbytes: int) -> bytes:
        raise NotImplementedError

    def _write_bytes(self, offset: int, data: bytes) -> None:
        raise NotImplementedError


class MemoryBackedDiskDriver(_RealDiskDriver):
    """A "disk" held in a byte array: fast, hermetic, byte-faithful."""

    def __init__(
        self,
        scheduler: Scheduler,
        size_bytes: int = 64 * MB,
        name: str = "memdisk0",
        io_scheduler: Optional[IoScheduler] = None,
        fixed_latency: float = 0.0,
        per_byte_time: float = 0.0,
    ):
        if size_bytes < SECTOR_SIZE:
            raise DiskError("memory disk must hold at least one sector")
        num_sectors = size_bytes // SECTOR_SIZE
        super().__init__(
            scheduler,
            name=name,
            num_sectors=num_sectors,
            io_scheduler=io_scheduler,
            fixed_latency=fixed_latency,
            per_byte_time=per_byte_time,
        )
        self._store = bytearray(num_sectors * SECTOR_SIZE)

    def _read_bytes(self, offset: int, nbytes: int) -> bytes:
        return bytes(self._store[offset : offset + nbytes])

    def _write_bytes(self, offset: int, data: bytes) -> None:
        self._store[offset : offset + len(data)] = data

    def snapshot(self) -> bytes:
        """A copy of the whole backing store (crash-recovery tests)."""
        return bytes(self._store)

    def restore(self, snapshot: bytes) -> None:
        if len(snapshot) != len(self._store):
            raise DiskError("snapshot size does not match the disk size")
        self._store[:] = snapshot


class FileBackedDiskDriver(_RealDiskDriver):
    """The paper's production driver: a Unix file as the disk back-end."""

    def __init__(
        self,
        scheduler: Scheduler,
        path: Union[str, Path],
        size_bytes: Optional[int] = None,
        name: str = "filedisk0",
        io_scheduler: Optional[IoScheduler] = None,
        fixed_latency: float = 0.0,
        per_byte_time: float = 0.0,
    ):
        self.path = Path(path)
        exists = self.path.exists()
        if size_bytes is None:
            if not exists:
                raise DiskError(f"backing file {self.path} does not exist and no size was given")
            size_bytes = self.path.stat().st_size
        if size_bytes < SECTOR_SIZE:
            raise DiskError("backing file must hold at least one sector")
        num_sectors = size_bytes // SECTOR_SIZE
        super().__init__(
            scheduler,
            name=name,
            num_sectors=num_sectors,
            io_scheduler=io_scheduler,
            fixed_latency=fixed_latency,
            per_byte_time=per_byte_time,
        )
        mode = "r+b" if exists else "w+b"
        self._file = open(self.path, mode)
        if not exists or self.path.stat().st_size < num_sectors * SECTOR_SIZE:
            self._file.truncate(num_sectors * SECTOR_SIZE)

    def _read_bytes(self, offset: int, nbytes: int) -> bytes:
        self._file.seek(offset)
        data = self._file.read(nbytes)
        if len(data) < nbytes:
            data += bytes(nbytes - len(data))
        return data

    def _write_bytes(self, offset: int, data: bytes) -> None:
        self._file.seek(offset)
        self._file.write(data)

    def close(self) -> None:
        """Flush and close the backing file."""
        try:
            self._file.flush()
            os.fsync(self._file.fileno())
        except (OSError, ValueError):  # pragma: no cover - best effort
            pass
        self._file.close()

    def __del__(self) -> None:  # pragma: no cover - defensive cleanup
        try:
            if not self._file.closed:
                self._file.close()
        except Exception:
            pass
