"""The PFS client interface: an NFS-style front-end.

"We use NFS as the external PFS interface.  We have constructed a full NFS
client interface class, which is a derived class from the abstract client
interface class.  The NFS class spawns a number of threads that wait for
incoming mount and NFS requests.  Whenever a request is received, the call
is dispatched to one (or more) calls in the abstract client interface.  Each
thread in the NFS component acts as a representative of a client while the
request is in progress."

This module provides:

* :class:`NfsClientInterface` — the derived client interface: the NFSv2-ish
  procedure set (GETATTR, LOOKUP, READ, WRITE, CREATE, REMOVE, RENAME,
  MKDIR, RMDIR, READDIR, SYMLINK, READLINK, STATFS) expressed over opaque
  file handles, implemented in terms of the abstract client interface's
  machinery.
* :class:`NfsServer` — the worker-thread pool dispatching requests.
* :class:`NfsLoopbackClient` — an in-process stand-in for the SunRPC/UDP
  transport, so examples and tests can exercise the full request path
  without a network (the documented substitution for real NFS).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, Optional

from repro.core.client import AbstractClientInterface
from repro.core.filesystem import FileSystem
from repro.core.filetypes import BaseFile, DirectoryFile, SymlinkFile
from repro.core.inode import FileKind
from repro.core.scheduler import Event, Scheduler
from repro.core.sync import Channel
from repro.errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    FileSystemError,
    InvalidArgument,
    IsADirectory,
    NotADirectory,
    ReproError,
    StaleHandle,
    StorageError,
)

__all__ = [
    "NfsStatus",
    "NfsProcedure",
    "NfsFileHandle",
    "NfsRequest",
    "NfsReply",
    "NfsClientInterface",
    "NfsServer",
    "NfsLoopbackClient",
    "NfsError",
]


class NfsStatus(enum.IntEnum):
    """NFSv2 status codes (the subset the framework can produce)."""

    OK = 0
    ERR_PERM = 1
    ERR_NOENT = 2
    ERR_IO = 5
    ERR_EXIST = 17
    ERR_NOTDIR = 20
    ERR_ISDIR = 21
    ERR_INVAL = 22
    ERR_NOSPC = 28
    ERR_NOTEMPTY = 66
    ERR_STALE = 70


#: mapping from framework errno names to NFS status codes.
_ERRNO_TO_STATUS = {
    "ENOENT": NfsStatus.ERR_NOENT,
    "EEXIST": NfsStatus.ERR_EXIST,
    "ENOTDIR": NfsStatus.ERR_NOTDIR,
    "EISDIR": NfsStatus.ERR_ISDIR,
    "ENOTEMPTY": NfsStatus.ERR_NOTEMPTY,
    "EINVAL": NfsStatus.ERR_INVAL,
    "ENOSPC": NfsStatus.ERR_NOSPC,
    "ESTALE": NfsStatus.ERR_STALE,
    "EPERM": NfsStatus.ERR_PERM,
    "EIO": NfsStatus.ERR_IO,
}


def status_for_error(error: FileSystemError) -> NfsStatus:
    return _ERRNO_TO_STATUS.get(getattr(error, "errno_name", "EIO"), NfsStatus.ERR_IO)


class NfsProcedure(enum.Enum):
    NULL = "null"
    GETATTR = "getattr"
    SETATTR = "setattr"
    LOOKUP = "lookup"
    READLINK = "readlink"
    READ = "read"
    WRITE = "write"
    CREATE = "create"
    REMOVE = "remove"
    RENAME = "rename"
    SYMLINK = "symlink"
    MKDIR = "mkdir"
    RMDIR = "rmdir"
    READDIR = "readdir"
    STATFS = "statfs"


@dataclass(frozen=True)
class NfsFileHandle:
    """An opaque, persistent reference to a file (inode number + generation)."""

    inode_number: int
    generation: int

    def __str__(self) -> str:
        return f"fh:{self.inode_number}.{self.generation}"


@dataclass
class NfsRequest:
    procedure: NfsProcedure
    args: Dict[str, Any] = field(default_factory=dict)
    reply_event: Optional[Event] = None


@dataclass
class NfsReply:
    status: NfsStatus
    result: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status is NfsStatus.OK


class NfsError(FileSystemError):
    """Raised by the loopback client when a call returns a non-OK status."""

    def __init__(self, procedure: NfsProcedure, status: NfsStatus):
        super().__init__(f"{procedure.value} failed with {status.name}")
        self.procedure = procedure
        self.status = status


class NfsClientInterface(AbstractClientInterface):
    """The NFS procedures, expressed over file handles.

    A derived class of the abstract client interface (as in the paper);
    every procedure below is a generator run by an NFS worker thread.
    """

    def __init__(self, fs: FileSystem):
        super().__init__(fs, auto_materialize=False)

    # -- handles -----------------------------------------------------------------

    def handle_for(self, file: BaseFile) -> NfsFileHandle:
        return NfsFileHandle(file.inode.number, file.inode.generation)

    def root_handle(self) -> NfsFileHandle:
        return self.handle_for(self.fs.root_directory())

    def file_for_handle(self, handle: NfsFileHandle) -> Generator[Any, Any, BaseFile]:
        try:
            file = yield from self.fs.file_table.load(handle.inode_number)
        except StorageError as error:
            # The inode is gone (file removed and reaped): the NFSv2 answer
            # is a stale-handle error, not a dead server thread.
            raise StaleHandle(f"stale file handle {handle}: {error}") from error
        if file.inode.generation != handle.generation:
            raise StaleHandle(f"stale file handle {handle}")
        return file

    def _directory_for_handle(
        self, handle: NfsFileHandle
    ) -> Generator[Any, Any, DirectoryFile]:
        file = yield from self.file_for_handle(handle)
        if not isinstance(file, DirectoryFile):
            raise NotADirectory(f"{handle} is not a directory")
        return file

    # -- attribute procedures ------------------------------------------------------

    def nfs_getattr(self, handle: NfsFileHandle) -> Generator[Any, Any, dict]:
        file = yield from self.file_for_handle(handle)
        return {"attr": file.inode.stat()}

    def nfs_setattr(
        self, handle: NfsFileHandle, size: Optional[int] = None, mode: Optional[int] = None
    ) -> Generator[Any, Any, dict]:
        file = yield from self.file_for_handle(handle)
        if size is not None:
            yield from file.truncate(size)
        if mode is not None:
            file.inode.mode = mode
            self.fs.note_inode_dirty(file.inode)
        return {"attr": file.inode.stat()}

    # -- name space procedures --------------------------------------------------------

    def nfs_lookup(self, dir_handle: NfsFileHandle, name: str) -> Generator[Any, Any, dict]:
        directory = yield from self._directory_for_handle(dir_handle)
        inode_number = yield from directory.lookup(name)
        if inode_number is None:
            raise FileNotFound(f"no entry {name!r} in {dir_handle}")
        file = yield from self.fs.file_table.load(inode_number)
        return {"handle": self.handle_for(file), "attr": file.inode.stat()}

    def nfs_create(self, dir_handle: NfsFileHandle, name: str) -> Generator[Any, Any, dict]:
        directory = yield from self._directory_for_handle(dir_handle)
        existing = yield from directory.lookup(name)
        if existing is not None:
            raise FileExists(f"{name!r} already exists")
        file = yield from self._create_in(directory, name, FileKind.REGULAR)
        return {"handle": self.handle_for(file), "attr": file.inode.stat()}

    def nfs_mkdir(self, dir_handle: NfsFileHandle, name: str) -> Generator[Any, Any, dict]:
        directory = yield from self._directory_for_handle(dir_handle)
        existing = yield from directory.lookup(name)
        if existing is not None:
            raise FileExists(f"{name!r} already exists")
        child = yield from self._create_in(directory, name, FileKind.DIRECTORY)
        return {"handle": self.handle_for(child), "attr": child.inode.stat()}

    def nfs_symlink(
        self, dir_handle: NfsFileHandle, name: str, target: str
    ) -> Generator[Any, Any, dict]:
        directory = yield from self._directory_for_handle(dir_handle)
        existing = yield from directory.lookup(name)
        if existing is not None:
            raise FileExists(f"{name!r} already exists")
        link = yield from self._create_in(directory, name, FileKind.SYMLINK)
        assert isinstance(link, SymlinkFile)
        link.set_target(target)
        return {"handle": self.handle_for(link), "attr": link.inode.stat()}

    def nfs_readlink(self, handle: NfsFileHandle) -> Generator[Any, Any, dict]:
        file = yield from self.file_for_handle(handle)
        if not isinstance(file, SymlinkFile):
            raise InvalidArgument(f"{handle} is not a symbolic link")
        return {"target": file.target}

    def nfs_remove(self, dir_handle: NfsFileHandle, name: str) -> Generator[Any, Any, dict]:
        directory = yield from self._directory_for_handle(dir_handle)
        inode_number = yield from directory.lookup(name)
        if inode_number is None:
            raise FileNotFound(f"no entry {name!r} in {dir_handle}")
        file = yield from self.fs.file_table.load(inode_number)
        if isinstance(file, DirectoryFile):
            raise IsADirectory(f"{name!r} is a directory; use RMDIR")
        yield from directory.remove_entry(name)
        file.inode.nlink = max(file.inode.nlink - 1, 0)
        if file.inode.nlink == 0 and file.open_count == 0:
            yield from self._reap(file)
        return {}

    def nfs_rmdir(self, dir_handle: NfsFileHandle, name: str) -> Generator[Any, Any, dict]:
        directory = yield from self._directory_for_handle(dir_handle)
        inode_number = yield from directory.lookup(name)
        if inode_number is None:
            raise FileNotFound(f"no entry {name!r} in {dir_handle}")
        child = yield from self.fs.file_table.load(inode_number)
        if not isinstance(child, DirectoryFile):
            raise NotADirectory(f"{name!r} is not a directory")
        empty = yield from child.is_empty()
        if not empty:
            raise DirectoryNotEmpty(f"{name!r} is not empty")
        yield from directory.remove_entry(name)
        child.inode.nlink = 0
        yield from self._reap(child)
        return {}

    def nfs_rename(
        self,
        from_dir: NfsFileHandle,
        from_name: str,
        to_dir: NfsFileHandle,
        to_name: str,
    ) -> Generator[Any, Any, dict]:
        source_dir = yield from self._directory_for_handle(from_dir)
        target_dir = yield from self._directory_for_handle(to_dir)
        inode_number = yield from source_dir.lookup(from_name)
        if inode_number is None:
            raise FileNotFound(f"no entry {from_name!r} in {from_dir}")
        existing = yield from target_dir.lookup(to_name)
        if existing is not None and existing != inode_number:
            victim = yield from self.fs.file_table.load(existing)
            if isinstance(victim, DirectoryFile):
                empty = yield from victim.is_empty()
                if not empty:
                    raise DirectoryNotEmpty(f"{to_name!r} is not empty")
            victim.inode.nlink = max(victim.inode.nlink - 1, 0)
            yield from target_dir.remove_entry(to_name)
            if victim.inode.nlink == 0 and victim.open_count == 0:
                yield from self._reap(victim)
        yield from target_dir.add_entry(to_name, inode_number)
        yield from source_dir.remove_entry(from_name)
        return {}

    def nfs_readdir(self, dir_handle: NfsFileHandle) -> Generator[Any, Any, dict]:
        directory = yield from self._directory_for_handle(dir_handle)
        entries = yield from directory.list_entries()
        return {"entries": dict(sorted(entries.items()))}

    # -- data procedures -----------------------------------------------------------------

    def nfs_read(
        self, handle: NfsFileHandle, offset: int, count: int
    ) -> Generator[Any, Any, dict]:
        file = yield from self.file_for_handle(handle)
        if isinstance(file, DirectoryFile):
            raise IsADirectory("READ on a directory")
        data = yield from file.read(offset, count)
        self.stats.bytes_read += len(data)
        return {"data": data, "attr": file.inode.stat(), "eof": offset + len(data) >= file.size}

    def nfs_write(
        self, handle: NfsFileHandle, offset: int, data: bytes
    ) -> Generator[Any, Any, dict]:
        file = yield from self.file_for_handle(handle)
        if isinstance(file, DirectoryFile):
            raise IsADirectory("WRITE on a directory")
        written = yield from file.write(offset, data)
        self.stats.bytes_written += written
        return {"count": written, "attr": file.inode.stat()}

    def nfs_statfs(self) -> Generator[Any, Any, dict]:
        layout = self.fs.layout
        return {
            "block_size": self.fs.block_size,
            "total_blocks": layout.volume.total_blocks,
            "free_blocks": layout.free_blocks,
        }
        yield  # pragma: no cover - statfs needs no blocking operations


class NfsServer:
    """The worker-thread pool serving NFS requests."""

    def __init__(self, fs: FileSystem, num_threads: int = 4, name: str = "nfsd"):
        if num_threads < 1:
            raise InvalidArgument("the NFS server needs at least one worker thread")
        self.fs = fs
        self.scheduler: Scheduler = fs.scheduler
        self.interface = NfsClientInterface(fs)
        self.name = name
        self._requests: Channel = Channel(self.scheduler, name=f"{name}-requests")
        self.workers = [
            self.scheduler.spawn(self._worker, index, name=f"{name}-{index}", daemon=True)
            for index in range(num_threads)
        ]
        self.requests_served = 0
        self.per_procedure: Dict[str, int] = {}

    # -- the MOUNT protocol -----------------------------------------------------------

    def mount_root(self) -> NfsFileHandle:
        """The MOUNT call: hand out the root file handle."""
        return self.interface.root_handle()

    # -- request submission ---------------------------------------------------------------

    def submit(self, request: NfsRequest) -> None:
        if request.reply_event is None:
            request.reply_event = self.scheduler.new_event("nfs-reply")
        self._requests.put(request)

    @property
    def queue_depth(self) -> int:
        return len(self._requests)

    # -- workers -------------------------------------------------------------------------------

    def _worker(self, index: int) -> Generator[Any, Any, None]:
        while True:
            request = yield from self._requests.get()
            reply = yield from self._dispatch(request)
            self.requests_served += 1
            self.per_procedure[request.procedure.value] = (
                self.per_procedure.get(request.procedure.value, 0) + 1
            )
            assert request.reply_event is not None
            request.reply_event.signal(reply)

    def _dispatch(self, request: NfsRequest) -> Generator[Any, Any, NfsReply]:
        handlers = {
            NfsProcedure.NULL: None,
            NfsProcedure.GETATTR: self.interface.nfs_getattr,
            NfsProcedure.SETATTR: self.interface.nfs_setattr,
            NfsProcedure.LOOKUP: self.interface.nfs_lookup,
            NfsProcedure.READLINK: self.interface.nfs_readlink,
            NfsProcedure.READ: self.interface.nfs_read,
            NfsProcedure.WRITE: self.interface.nfs_write,
            NfsProcedure.CREATE: self.interface.nfs_create,
            NfsProcedure.REMOVE: self.interface.nfs_remove,
            NfsProcedure.RENAME: self.interface.nfs_rename,
            NfsProcedure.SYMLINK: self.interface.nfs_symlink,
            NfsProcedure.MKDIR: self.interface.nfs_mkdir,
            NfsProcedure.RMDIR: self.interface.nfs_rmdir,
            NfsProcedure.READDIR: self.interface.nfs_readdir,
            NfsProcedure.STATFS: self.interface.nfs_statfs,
        }
        if request.procedure is NfsProcedure.NULL:
            return NfsReply(NfsStatus.OK, {})
        handler = handlers.get(request.procedure)
        if handler is None:
            return NfsReply(NfsStatus.ERR_INVAL, {})
        try:
            result = yield from handler(**request.args)
            return NfsReply(NfsStatus.OK, result)
        except FileSystemError as error:
            return NfsReply(status_for_error(error), {"message": str(error)})
        except ReproError as error:
            # A server must answer every request: internal failures become
            # ERR_IO instead of silently killing the worker thread (which
            # would leave the client waiting for a reply forever).
            return NfsReply(NfsStatus.ERR_IO, {"message": str(error)})


class NfsLoopbackClient:
    """An in-process client: the stand-in for the SunRPC/UDP transport.

    Every call builds an :class:`NfsRequest`, submits it to the server and
    drives the scheduler until the reply arrives — which is exactly what a
    remote client plus the real scheduler's external-event handling would do,
    minus the network.
    """

    def __init__(self, server: NfsServer):
        self.server = server
        self.scheduler = server.scheduler
        self.root = server.mount_root()

    # -- raw call ---------------------------------------------------------------------

    def call(self, procedure: NfsProcedure, **args: Any) -> NfsReply:
        request = NfsRequest(procedure=procedure, args=args)
        request.reply_event = self.scheduler.new_event(f"reply-{procedure.value}")
        self.server.submit(request)
        waiter = self.scheduler.spawn(self._await_reply, request, name=f"rpc-{procedure.value}")
        return self.scheduler.run_until_complete(waiter)

    @staticmethod
    def _await_reply(request: NfsRequest) -> Generator[Any, Any, NfsReply]:
        assert request.reply_event is not None
        reply = yield from request.reply_event.wait()
        return reply

    def _expect_ok(self, procedure: NfsProcedure, reply: NfsReply) -> Dict[str, Any]:
        if not reply.ok:
            raise NfsError(procedure, reply.status)
        return reply.result

    # -- convenience wrappers ------------------------------------------------------------

    def getattr(self, handle: NfsFileHandle) -> dict:
        return self._expect_ok(
            NfsProcedure.GETATTR, self.call(NfsProcedure.GETATTR, handle=handle)
        )["attr"]

    def setattr(self, handle: NfsFileHandle, size: Optional[int] = None) -> dict:
        return self._expect_ok(
            NfsProcedure.SETATTR, self.call(NfsProcedure.SETATTR, handle=handle, size=size)
        )["attr"]

    def lookup(self, dir_handle: NfsFileHandle, name: str) -> NfsFileHandle:
        result = self._expect_ok(
            NfsProcedure.LOOKUP, self.call(NfsProcedure.LOOKUP, dir_handle=dir_handle, name=name)
        )
        return result["handle"]

    def create(self, dir_handle: NfsFileHandle, name: str) -> NfsFileHandle:
        result = self._expect_ok(
            NfsProcedure.CREATE, self.call(NfsProcedure.CREATE, dir_handle=dir_handle, name=name)
        )
        return result["handle"]

    def mkdir(self, dir_handle: NfsFileHandle, name: str) -> NfsFileHandle:
        result = self._expect_ok(
            NfsProcedure.MKDIR, self.call(NfsProcedure.MKDIR, dir_handle=dir_handle, name=name)
        )
        return result["handle"]

    def symlink(self, dir_handle: NfsFileHandle, name: str, target: str) -> NfsFileHandle:
        result = self._expect_ok(
            NfsProcedure.SYMLINK,
            self.call(NfsProcedure.SYMLINK, dir_handle=dir_handle, name=name, target=target),
        )
        return result["handle"]

    def readlink(self, handle: NfsFileHandle) -> str:
        return self._expect_ok(
            NfsProcedure.READLINK, self.call(NfsProcedure.READLINK, handle=handle)
        )["target"]

    def read(self, handle: NfsFileHandle, offset: int, count: int) -> bytes:
        return self._expect_ok(
            NfsProcedure.READ, self.call(NfsProcedure.READ, handle=handle, offset=offset, count=count)
        )["data"]

    def write(self, handle: NfsFileHandle, offset: int, data: bytes) -> int:
        return self._expect_ok(
            NfsProcedure.WRITE, self.call(NfsProcedure.WRITE, handle=handle, offset=offset, data=data)
        )["count"]

    def remove(self, dir_handle: NfsFileHandle, name: str) -> None:
        self._expect_ok(
            NfsProcedure.REMOVE, self.call(NfsProcedure.REMOVE, dir_handle=dir_handle, name=name)
        )

    def rmdir(self, dir_handle: NfsFileHandle, name: str) -> None:
        self._expect_ok(
            NfsProcedure.RMDIR, self.call(NfsProcedure.RMDIR, dir_handle=dir_handle, name=name)
        )

    def rename(
        self, from_dir: NfsFileHandle, from_name: str, to_dir: NfsFileHandle, to_name: str
    ) -> None:
        self._expect_ok(
            NfsProcedure.RENAME,
            self.call(
                NfsProcedure.RENAME,
                from_dir=from_dir,
                from_name=from_name,
                to_dir=to_dir,
                to_name=to_name,
            ),
        )

    def readdir(self, dir_handle: NfsFileHandle) -> Dict[str, int]:
        return self._expect_ok(
            NfsProcedure.READDIR, self.call(NfsProcedure.READDIR, dir_handle=dir_handle)
        )["entries"]

    def statfs(self) -> dict:
        return self._expect_ok(NfsProcedure.STATFS, self.call(NfsProcedure.STATFS))
