#!/usr/bin/env python3
"""Per-file-type policy: a continuous-media file with its own cache budget.

Section 2's "Files" component motivates per-type policy with multimedia
files: "if ordinary cache policies are used on a multi-media file the whole
cache would fill up with this data".  This example stores a large media file
and a set of small files on one PFS instance, streams the media file
sequentially, and shows that the multimedia file's cache budget keeps it
from evicting the small files — while an ordinary regular file of the same
size pollutes the cache.

Run with:  python examples/multimedia_streaming.py [--full-hardware] [--volumes N]
"""

import argparse

from repro import CacheConfig, LayoutConfig, PegasusFileSystem
from repro.cli import add_stack_flags, array_section
from repro.units import KB, MB


def build_fs(args) -> PegasusFileSystem:
    array = array_section(args)
    pfs = PegasusFileSystem(
        size_bytes=64 * MB,
        # 256 cache blocks (split into per-volume shards on the array).
        cache=CacheConfig(size_bytes=1 * MB),
        layout=LayoutConfig(segment_size=128 * KB),
        array=array,
    )
    pfs.format()
    pfs.mkdir("/small")
    for i in range(32):
        pfs.write_file(f"/small/file{i:02d}.txt", b"s" * 4 * KB)
    pfs.sync()
    # Warm the cache with the small files.
    for i in range(32):
        pfs.read_file(f"/small/file{i:02d}.txt")
    return pfs


def resident_small_blocks(pfs: PegasusFileSystem) -> int:
    count = 0
    for file in pfs.fs.file_table.loaded_files:
        if file.inode.kind.name == "REGULAR" and file.size == 4 * KB:
            count += len(pfs.cache.cached_blocks_of(file.file_id))
    return count


def stream(pfs: PegasusFileSystem, path: str, handle: int, size: int) -> None:
    for offset in range(0, size, 64 * KB):
        pfs.read(handle, offset, 64 * KB)


def main() -> None:
    parser = add_stack_flags(argparse.ArgumentParser(description=__doc__))
    args = parser.parse_args()
    # The ten-disk array pushes every block through per-volume LFS logs and
    # real byte-moving drivers; a smaller media file keeps the demo snappy
    # while still overflowing each cache shard many times over.
    media_size = 2 * MB if args.full_hardware else 8 * MB

    print("streaming through an ordinary regular file ...")
    pfs = build_fs(args)
    before = resident_small_blocks(pfs)
    pfs.write_file("/movie-regular.bin", b"m" * media_size)
    pfs.sync()
    handle = pfs.open("/movie-regular.bin")
    stream(pfs, "/movie-regular.bin", handle, media_size)
    pfs.close(handle)
    after_regular = resident_small_blocks(pfs)
    print(f"  small-file blocks resident: {before} -> {after_regular}")

    print("streaming through a multimedia file (budgeted cache use) ...")
    pfs = build_fs(args)
    before = resident_small_blocks(pfs)
    handle = pfs.create_multimedia("/movie.mm")
    pfs.write(handle, 0, b"m" * media_size)
    pfs.sync()
    stream(pfs, "/movie.mm", handle, media_size)
    pfs.close(handle)
    after_multimedia = resident_small_blocks(pfs)
    print(f"  small-file blocks resident: {before} -> {after_multimedia}")

    print()
    if after_multimedia >= after_regular:
        print(f"cache pollution avoided: {after_multimedia} >= {after_regular} "
              f"(multimedia file kept its footprint bounded)")
    else:
        print(f"small-file residency: {after_multimedia} vs {after_regular} — on a "
              f"sharded array the effect is per shard; compare within one volume")


if __name__ == "__main__":
    main()
