#!/usr/bin/env python3
"""PFS as a persistent store: format, populate, crash, remount, verify.

Demonstrates the on-line half of the framework doing real storage work on a
file-backed disk: directories, files, symlinks, renames, deletion, a cache
sync, an unmount (checkpoint) and a remount from the same backing file — the
check that the segmented LFS metadata (IFILE, checkpoint, segment summaries)
really round-trips through the disk.

Run with:  python examples/pfs_storage.py [backing-file] [--full-hardware] [--volumes N]

With ``--full-hardware`` the store is the sun4_280 ten-disk array: disk
``i`` lands in ``<backing>.d<i>`` and the same metadata round-trip is
checked across every per-volume sub-layout.
"""

import argparse
import tempfile
from pathlib import Path

from repro import CacheConfig, LayoutConfig, PegasusFileSystem
from repro.cli import add_stack_flags, array_section
from repro.units import KB, MB


def populate(pfs: PegasusFileSystem) -> None:
    pfs.makedirs("/home/alice")
    pfs.makedirs("/home/bob")
    pfs.write_file("/home/alice/notes.txt", b"remember to flush the cache\n" * 50)
    pfs.write_file("/home/bob/data.bin", bytes(range(256)) * 200)
    pfs.symlink("/home/alice/notes.txt", "/home/bob/alice-notes")
    pfs.write_file("/home/bob/scratch.tmp", b"short lived" * 100)
    pfs.delete("/home/bob/scratch.tmp")          # dies before it ever hits the disk
    pfs.rename("/home/bob/data.bin", "/home/bob/dataset.bin")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("backing", nargs="?", default=None)
    add_stack_flags(parser)
    args = parser.parse_args()
    explicit_backing = args.backing is not None
    backing = Path(args.backing) if explicit_backing else Path(tempfile.mktemp(suffix=".pfs"))
    array = array_section(args)
    options = dict(
        backing=backing,
        size_bytes=80 * MB if array is not None else 32 * MB,
        cache=CacheConfig(size_bytes=2 * MB),
        layout=LayoutConfig(segment_size=128 * KB),
        array=array,
    )

    print(f"formatting a Pegasus file system on {backing} ...")
    pfs = PegasusFileSystem(**options)
    pfs.format()
    populate(pfs)
    print("populated:", pfs.listdir("/home/alice"), pfs.listdir("/home/bob"))
    print("statistics after population:", pfs.statistics()["cache"])
    pfs.unmount()
    pfs.close_backing()

    print("\nremounting from the backing file ...")
    remounted = PegasusFileSystem(**options)
    remounted.mount()
    notes = remounted.read_file("/home/alice/notes.txt")
    dataset = remounted.read_file("/home/bob/dataset.bin")
    via_link = remounted.read_file("/home/bob/alice-notes")
    print("alice/notes.txt bytes :", len(notes))
    print("bob/dataset.bin bytes :", len(dataset))
    print("symlink resolves      :", via_link == notes)
    print("scratch.tmp survived? :", remounted.exists("/home/bob/scratch.tmp"))
    remounted.unmount()
    remounted.close_backing()

    if not explicit_backing:
        backing.unlink(missing_ok=True)
        for piece in backing.parent.glob(backing.name + ".d*"):
            piece.unlink(missing_ok=True)
    print("done.")


if __name__ == "__main__":
    main()
