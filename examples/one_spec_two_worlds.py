#!/usr/bin/env python3
"""One StackSpec, two worlds: the assembly layer in one page.

The paper's claim is that a simulator and a file system are the same
components under different helper bindings.  The assembly layer makes that
claim a one-liner: describe the stack once with a ``StackSpec`` — here the
paper's Sun 4/280 evaluation machine, ten HP 97560 disks on three SCSI
buses carved into five volumes — then

1. replay a synthetic trace through a ``PatsySimulator`` built from it
   (simulated disks, no data pointers), and
2. mount a ``PegasusFileSystem`` from the *same spec* (memory-backed
   drivers, real bytes) and store real data on the same five-volume array.

Run with:  python examples/one_spec_two_worlds.py [--full-hardware] [--volumes N]

This example *is* the full-hardware demo — the flags pick how many volumes
the sun4_280 preset's ten disks are carved into (``--full-hardware`` is
accepted for symmetry with the other examples and is the default here).
"""

import argparse

from repro import PatsySimulator, PegasusFileSystem, StackSpec, sun4_280_config
from repro.analysis.report import format_volume_table
from repro.cli import add_stack_flags
from repro.patsy.workload import WorkloadProfile, generate_workload
from repro.units import MB, human_time


def main() -> None:
    args = add_stack_flags(argparse.ArgumentParser(description=__doc__)).parse_args()
    # The stack, described once: cache shards, flush daemons + governor,
    # per-volume LFS + cleaners, hash placement over the volumes.
    spec = StackSpec.from_config(
        sun4_280_config(scale=0.002, seed=42, volumes=args.volumes)
    )
    print("spec:", f"{spec.num_disks} disks / {spec.num_buses} buses /",
          f"{spec.num_volumes} volumes, layout={spec.layout.kind}")
    print("manifest round-trip:", StackSpec.from_dict(spec.to_dict()) == spec)
    print()

    # --- world 1: the off-line simulator -----------------------------------
    print("=== Patsy: the same spec, simulated ===")
    simulator = PatsySimulator.from_spec(spec)
    trace = generate_workload(
        WorkloadProfile(name="demo", duration=120.0, num_clients=4,
                        initial_files=30, directory_count=10),
        seed=42,
    )
    result = simulator.replay(trace, trace_name="one-spec-demo")
    print(f"operations   : {result.operations}")
    print(f"mean latency : {human_time(result.mean_latency)}")
    print(f"hit rate     : {result.cache_stats['hit_rate'] * 100:.1f}%")
    print()
    print(format_volume_table(result.volume_stats))
    print()

    # --- world 2: the on-line file system ----------------------------------
    print("=== PFS: the same spec, storing real bytes ===")
    pfs = PegasusFileSystem.from_spec(spec, size_bytes=40 * MB)
    pfs.format()
    pfs.mkdir("/home")
    for i in range(8):
        pfs.write_file(f"/home/file{i}.txt", f"file {i} on a 5-volume array\n".encode())
    print("read back :", pfs.read_file("/home/file3.txt").decode().strip())
    print("cache     :", type(pfs.cache).__name__, f"({len(pfs.cache.shards)} shards)")
    print("layout    :", repr(pfs.layout))
    pfs.unmount()  # flushes every shard through its volume's sub-layout
    busy = sum(1 for sub in pfs.layout.sublayouts if sub.stats.blocks_written > 0)
    print(f"volumes written by 8 files: {busy}/{spec.num_volumes}")


if __name__ == "__main__":
    main()
