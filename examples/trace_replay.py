#!/usr/bin/env python3
"""Trace-driven simulation from a trace file (the Patsy workflow).

Shows the full off-line loop the paper describes: obtain a trace (here a
synthetic Sprite-like workload written to disk in the Sprite text format),
read it back through the Sprite trace reader, replay it on a configured
Patsy simulator, and print the per-interval and plug-in statistics,
including the disk-queue and rotational-delay histograms.

Run with:  python examples/trace_replay.py [trace-name] [scale] [--full-hardware] [--volumes N]
           python examples/trace_replay.py --nodes 4 --jobs 4   # parallel cluster replay
"""

import argparse
import tempfile
from pathlib import Path

from repro import PatsySimulator, sprite_like_trace
from repro.cli import add_cluster_flags, add_stack_flags, cluster_replay_config
from repro.config import FlushConfig, sprite_server_config, sun4_280_config
from repro.patsy.sprite import load_sprite_trace
from repro.patsy.stats import DiskQueuePlugin, RotationalDelayPlugin
from repro.patsy.traces import (
    load_trace,
    operation_mix,
    partition_by_client,
    save_trace,
)
from repro.units import human_time


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", nargs="?", default="2a")
    parser.add_argument("scale", nargs="?", type=float, default=0.25)
    add_stack_flags(parser)
    add_cluster_flags(parser)
    args = parser.parse_args()
    trace_name, scale = args.trace, args.scale

    # 1. Generate a workload and store it as an on-disk trace file.
    records = sprite_like_trace(trace_name, scale=scale, seed=11)
    trace_path = Path(tempfile.mktemp(suffix=".trace"))
    save_trace(records, trace_path)
    print(f"wrote {len(records)} records to {trace_path}")
    print("operation mix:", operation_mix(records))

    # 2. Read it back (the same path a converted real Sprite/Coda trace takes).
    replayable = load_trace(trace_path)

    # 3. Configure a simulator close to the paper's Sprite server and replay.
    if args.nodes > 1:
        # N-node cluster replay.  The trace is rewritten into per-client
        # subtrees so every node owns its clients' files outright — the
        # partition that lets --parallel/--jobs run one worker process per
        # node with byte-identical results.
        config = cluster_replay_config(args, seed=11)
        replayable = partition_by_client(replayable)
    elif args.full_hardware:
        # The paper machine as a storage array: per-volume layouts, cache
        # shards and flush daemons via the sun4_280 preset.
        config = sun4_280_config(scale=0.25, seed=11, volumes=args.volumes)
    else:
        config = sprite_server_config(scale=0.25, seed=11)
    config = config.with_flush(FlushConfig(policy="ups"))
    simulator = PatsySimulator(config)
    result = simulator.replay(replayable, trace_name=trace_name)

    print(f"\nsimulated {result.simulated_time:.0f} seconds of trace time, "
          f"{result.operations} operations, {result.errors} errors")
    print(f"mean latency {human_time(result.mean_latency)}, "
          f"95th percentile {human_time(result.latency.percentile(0.95))}")
    print("\nper-interval means (the paper reports every 15 minutes):")
    for report in result.latency.interval_reports:
        print(
            f"  [{report['start']:7.1f}s - {report['end']:7.1f}s] "
            f"{report['operations']:5d} ops, mean {human_time(report['mean_latency'])}"
        )

    if result.parallel_stats:
        stats = result.parallel_stats
        print(
            f"\nparallel replay: {stats['workers']} worker processes, "
            f"critical path {stats['critical_path_seconds']:.2f}s "
            "(max per-worker CPU time)"
        )
    else:
        # The plug-in histograms sample the in-process hardware models; a
        # parallel run's hardware lives in the worker processes.
        print("\nplug-in statistics histograms:")
        print(DiskQueuePlugin().histogram(simulator).to_ascii(label="disk queue length"))
        print()
        print(RotationalDelayPlugin().histogram(simulator).to_ascii(label="rotational delay (s)"))

    trace_path.unlink(missing_ok=True)


if __name__ == "__main__":
    main()
