#!/usr/bin/env python3
"""Quickstart: the same component library as an on-line FS and as a simulator.

This is the smallest end-to-end tour of the reproduction:

1. instantiate PFS (the on-line Pegasus file system) on an in-memory disk,
   store and read back real data through the NFS-style front-end;
2. instantiate Patsy (the off-line simulator) from the same components and
   replay a tiny hand-written trace on simulated HP 97560 hardware;
3. print the measurements the simulator collected.

Run with:  python examples/quickstart.py [--full-hardware] [--volumes N]

``--full-hardware`` swaps the single-disk stack for the paper's Sun 4/280
(ten disks, three buses, N volumes) in *both* worlds via the sun4_280
preset.
"""

import argparse

from repro import PegasusFileSystem, PatsySimulator, TraceRecord
from repro.cli import add_stack_flags, array_section, stack_config
from repro.pfs.nfs import NfsLoopbackClient, NfsServer
from repro.units import KB, human_time


def online_file_system(args) -> None:
    print("=== PFS: the on-line instantiation ===")
    # Memory-backed disk(s), segmented LFS, 30s update policy; with
    # --full-hardware the same ten-disk array PATSY simulates below.
    pfs = PegasusFileSystem(array=array_section(args))
    pfs.format()
    pfs.mkdir("/home")
    pfs.write_file("/home/hello.txt", b"hello, cut-and-paste world\n")
    print("read back:", pfs.read_file("/home/hello.txt").decode().strip())

    # The same data is reachable through the NFS-style front-end.
    server = NfsServer(pfs.fs, num_threads=2)
    client = NfsLoopbackClient(server)
    home = client.lookup(client.root, "home")
    handle = client.lookup(home, "hello.txt")
    print("over NFS :", client.read(handle, 0, 100).decode().strip())
    print("statfs   :", client.statfs())
    pfs.unmount()
    print()


def offline_simulator(args) -> None:
    print("=== Patsy: the off-line instantiation ===")
    simulator = PatsySimulator(stack_config(args))
    trace = [
        TraceRecord(0.0, 0, "mkdir", "/project"),
        TraceRecord(0.1, 0, "open", "/project/report.txt"),
        TraceRecord(0.2, 0, "write", "/project/report.txt", offset=0, size=16 * KB),
        TraceRecord(0.6, 0, "read", "/project/report.txt", offset=0, size=16 * KB),
        TraceRecord(0.8, 0, "close", "/project/report.txt"),
        TraceRecord(1.0, 1, "read", "/archive/old-data.bin", offset=0, size=64 * KB),
        TraceRecord(2.0, 0, "unlink", "/project/report.txt"),
    ]
    result = simulator.replay(trace, trace_name="quickstart")
    print(f"operations      : {result.operations}")
    print(f"mean latency    : {human_time(result.mean_latency)}")
    print(f"cache hit rate  : {result.cache_stats['hit_rate'] * 100:.1f}%")
    print(f"blocks written  : {result.blocks_written_to_disk}")
    print(f"write savings   : {result.write_savings_blocks} blocks died in memory")
    print()
    print(result.latency.describe())


if __name__ == "__main__":
    parser = add_stack_flags(argparse.ArgumentParser(description=__doc__))
    arguments = parser.parse_args()
    online_file_system(arguments)
    offline_simulator(arguments)
