#!/usr/bin/env python3
"""The paper's Section 5.1 experiment: delayed-write ("write saving") policies.

Replays a synthetic stand-in for a Sprite trace under the four policies the
paper compares (30-second update, UPS, NVRAM whole-file, NVRAM partial-file)
and prints the Figure 2-style comparison: mean latencies, latency CDF table,
write counts and write savings.

Run with:  python examples/delayed_writes.py [trace] [scale] [--full-hardware] [--volumes N]
           e.g. python examples/delayed_writes.py 1a 0.3 --full-hardware
"""

import argparse

from repro.analysis.report import (
    ascii_cdf_plot,
    format_latency_cdf_table,
    format_policy_comparison,
)
from repro.cli import add_stack_flags
from repro.patsy.experiments import (
    DelayedWriteExperiment,
    format_spec_delta,
    run_policy_comparison,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", nargs="?", default="1a")
    parser.add_argument("scale", nargs="?", type=float, default=0.3)
    add_stack_flags(parser)
    args = parser.parse_args()
    trace_name, trace_scale = args.trace, args.scale

    machine = "sun4_280 array" if args.full_hardware else "single disk"
    print(f"replaying synthetic Sprite trace {trace_name!r} at scale {trace_scale} "
          f"under four delayed-write policies on a {machine} ...")
    base = DelayedWriteExperiment(trace_name=trace_name, policy_name="write-delay",
                                  trace_scale=trace_scale)
    if args.full_hardware:
        print("manifest delta vs. the single-disk run:")
        print(format_spec_delta(base.spec_delta(base.with_array(volumes=args.volumes))))
    results = run_policy_comparison(
        trace_name,
        trace_scale=trace_scale,
        full_hardware=args.full_hardware,
        volumes=args.volumes if args.full_hardware else 5,
    )

    print()
    print(format_policy_comparison(results, trace_name))
    print()
    latencies = {name: result.latency.latencies() for name, result in results.items()}
    print(format_latency_cdf_table(latencies))
    print()
    print(ascii_cdf_plot(latencies, max_latency=0.05))
    print()
    print("write traffic summary:")
    for name, result in results.items():
        print(
            f"  {name:<22} blocks written: {result.blocks_written_to_disk:6d}   "
            f"dirty blocks that died in memory: {result.write_savings_blocks:6d}"
        )


if __name__ == "__main__":
    main()
