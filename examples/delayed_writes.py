#!/usr/bin/env python3
"""The paper's Section 5.1 experiment: delayed-write ("write saving") policies.

Replays a synthetic stand-in for a Sprite trace under the four policies the
paper compares (30-second update, UPS, NVRAM whole-file, NVRAM partial-file)
and prints the Figure 2-style comparison: mean latencies, latency CDF table,
write counts and write savings.

Run with:  python examples/delayed_writes.py [trace] [scale]
           e.g. python examples/delayed_writes.py 1a 0.3
"""

import sys

from repro.analysis.report import (
    ascii_cdf_plot,
    format_latency_cdf_table,
    format_policy_comparison,
)
from repro.patsy.experiments import run_policy_comparison


def main() -> None:
    trace_name = sys.argv[1] if len(sys.argv) > 1 else "1a"
    trace_scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.3

    print(f"replaying synthetic Sprite trace {trace_name!r} at scale {trace_scale} "
          f"under four delayed-write policies ...")
    results = run_policy_comparison(trace_name, trace_scale=trace_scale)

    print()
    print(format_policy_comparison(results, trace_name))
    print()
    latencies = {name: result.latency.latencies() for name, result in results.items()}
    print(format_latency_cdf_table(latencies))
    print()
    print(ascii_cdf_plot(latencies, max_latency=0.05))
    print()
    print("write traffic summary:")
    for name, result in results.items():
        print(
            f"  {name:<22} blocks written: {result.blocks_written_to_disk:6d}   "
            f"dirty blocks that died in memory: {result.write_savings_blocks:6d}"
        )


if __name__ == "__main__":
    main()
