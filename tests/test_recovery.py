"""Crash-at-every-step recovery: kill the stack at every boundary, remount,
replay, and require byte-identical reads.

The harness uses :class:`CrashPoints` in its two modes:

1. a **recording** reference run drives the full workload (create files,
   sync, migrate a batch of them, delete one, unmount) and collects every
   ``(point, occurrence)`` pair actually visited — the crash matrix;
2. one **armed** run per pair replays the identical workload (same spec,
   same seeds, fresh state) and dies at exactly that boundary via
   :class:`SimulatedCrash` and a scheduler abort.

What survives the crash is what would survive a power failure: the disk
images (``MemoryBackedDiskDriver.snapshot``) and the metadata tier's
:class:`DurableStore` (committed WAL bytes + manifest).  Buffered WAL
records, the block cache and every in-memory table die with the stack.
A fresh stack is then rebuilt over the survivors, mounted without
formatting — which recovers the routing table from manifest + WAL replay —
and every file the workload never deleted must read back byte-identical
to the uncrashed reference.  The deleted file may or may not have its
deletion durable, but if it is still visible it too must read intact.

The migration plan moves files in one direction only (out of the busiest
native volume, never back into it), mirroring a real drain: the source's
durable state then always holds the pre-migration copy, so even a lost
routing entry falls back to readable bytes.
"""

import os
from collections import Counter

import pytest

from repro.assembly.bindings import OnlineBinding, SimulatedBinding
from repro.assembly.builder import build_stack
from repro.assembly.spec import StackSpec
from repro.config import (
    ArrayConfig,
    CacheConfig,
    ClusterConfig,
    FlushConfig,
    LayoutConfig,
)
from repro.core.cluster.rebalance import ClusterRebalancer
from repro.core.metadata import CrashPoints, DurableStore, SimulatedCrash, decode_wal
from repro.core.metadata.wal import REC_COMMIT, REC_FLIP
from repro.errors import FileNotFound
from repro.units import KB, MB
from tests.conftest import run

NUM_FILES = 6
FILE_BYTES = 12 * KB  # three 4 KB blocks per file

#: CI smoke runs set this > 1 to sample every Nth crash point instead of
#: sweeping the whole matrix.
MATRIX_STRIDE = max(1, int(os.environ.get("RECOVERY_MATRIX_STRIDE", "1")))


def payload(index: int) -> bytes:
    return bytes((index * 37 + j) % 251 for j in range(FILE_BYTES))


def crash_spec(nodes=2, volumes_per_node=1, placement="hash"):
    return StackSpec(
        cache=CacheConfig(size_bytes=256 * 4 * KB),
        flush=FlushConfig(policy="periodic"),
        layout=LayoutConfig(segment_size=16 * 4 * KB),
        array=ArrayConfig(
            volumes=volumes_per_node,
            buses=1,
            disks_per_bus=volumes_per_node,
            placement=placement,
        ),
        cluster=ClusterConfig(
            nodes=nodes,
            rebalance=False,
            # Small enough that the WAL folds into the manifest mid-workload,
            # putting manifest.write.* and wal.truncate.pre into the matrix.
            wal_checkpoint_bytes=256,
        ),
    )


def build_crash_stack(spec, store, crashpoints=None, simulated=False):
    if simulated:
        binding = SimulatedBinding(metadata_store=store)
    else:
        binding = OnlineBinding(
            size_bytes=16 * MB * spec.cluster.nodes, metadata_store=store
        )
    return build_stack(spec, binding, crashpoints=crashpoints)


def drive_workload(stack, with_data=True):
    """Mount, create files, sync, migrate one-directionally, delete one
    migrated file, unmount.  Returns ``(files, migrated_ids, deleted_path)``
    where ``files`` is a list of ``(path, file_id)``."""
    scheduler = stack.scheduler
    client = stack.client
    fs = stack.fs
    placement = stack.cluster.placement

    def body():
        yield from fs.mount(True)
        files = []
        for i in range(NUM_FILES):
            path = f"/f{i}"
            handle = yield from client.create(path)
            if with_data:
                yield from client.write(handle, 0, payload(i))
            else:
                yield from client.write(handle, 0, length=FILE_BYTES)
            yield from client.fsync(handle)
            yield from client.close(handle)
            file = yield from client.lookup(path)
            files.append((path, file.file_id))
        # Checkpoint every sub-layout: the created state is the floor any
        # crash from here on recovers to.
        yield from fs.sync()

        # One-direction plan: drain the busiest native volume, never
        # migrate anything back into it.
        homes = Counter(placement.volume_of_file(fid) for _, fid in files)
        source = homes.most_common(1)[0][0]
        targets = [v for v in range(placement.num_volumes) if v != source]
        rebalancer = ClusterRebalancer(
            fs,
            placement,
            stack.spec.cluster,
            metadata=stack.metadata,
            crashpoints=stack.crashpoints,
        )
        migrated = []
        for i, (path, fid) in enumerate(files):
            if placement.volume_of_file(fid) == source and targets:
                moved = yield from rebalancer.migrate_file(
                    fid, targets[i % len(targets)]
                )
                if moved:
                    migrated.append((path, fid))
        deleted_path = None
        if migrated:
            deleted_path = migrated[0][0]
            yield from client.unlink(deleted_path)
        yield from fs.unmount()
        return files, [fid for _, fid in migrated], deleted_path

    thread = scheduler.spawn(body)
    return scheduler.run_until_complete(thread)


def reference_run(spec):
    """The uncrashed run: its visited crash points are the matrix."""
    crashpoints = CrashPoints(recording=True)
    stack = build_crash_stack(spec, DurableStore(), crashpoints)
    files, migrated, deleted_path = drive_workload(stack)
    return crashpoints.seen, files, migrated, deleted_path


def crashed_run(spec, point, occurrence):
    """Replay the workload, die at ``(point, occurrence)``; return what a
    power failure leaves behind: the durable store and the disk images."""
    store = DurableStore()
    stack = build_crash_stack(spec, store, CrashPoints(arm=(point, occurrence)))
    with pytest.raises(SimulatedCrash) as exc_info:
        drive_workload(stack)
    assert exc_info.value.point == point
    images = [
        driver.snapshot() for node in stack.cluster.nodes for driver in node.drivers
    ]
    return store, images


def remount(spec, store, images):
    """A fresh stack over the surviving bytes; mounting recovers routing."""
    stack = build_crash_stack(spec, store)
    drivers = [d for node in stack.cluster.nodes for d in node.drivers]
    assert len(drivers) == len(images)
    for driver, image in zip(drivers, images):
        driver.restore(image)
    run(stack.scheduler, stack.fs.mount, False)
    return stack


def check_recovered(stack, files, deleted_path, context):
    scheduler = stack.scheduler
    client = stack.client
    placement = stack.cluster.placement
    for path, fid in files:
        home = placement.volume_of_file(fid)
        assert 0 <= home < placement.num_volumes, context
        if path == deleted_path:
            # The deletion may or may not have become durable before the
            # crash; if the file is still visible it must read intact.
            try:
                run(scheduler, client.lookup, path)
            except FileNotFound:
                continue
        index = int(path[2:])
        data = run(scheduler, client.read_file, path, 0, FILE_BYTES)
        assert data == payload(index), f"{path} corrupted after crash at {context}"


# --------------------------------------------------------------------------- the full matrix


FULL_MATRIX_SHAPES = [
    pytest.param(1, 2, "hash", id="1node-2vol-hash"),
    pytest.param(2, 1, "directory", id="2node-directory"),
]


@pytest.mark.parametrize("nodes,volumes_per_node,placement", FULL_MATRIX_SHAPES)
def test_crash_at_every_step_recovers_byte_identical(nodes, volumes_per_node, placement):
    spec = crash_spec(nodes, volumes_per_node, placement)
    matrix, files, migrated, deleted_path = reference_run(spec)
    assert migrated, "the workload migrated nothing — the matrix is hollow"
    points = {point for point, _ in matrix}
    # The matrix must cover all four layers of boundaries.
    assert any(p.startswith("migrate.") for p in points)
    assert any(p.startswith("wal.") for p in points)
    assert any(p.startswith("manifest.") for p in points)
    # LFS summary+index writes: only armed past the first durable
    # checkpoint (before that floor a crash legitimately loses data).
    assert any(p.startswith("lfs.index.") for p in points)
    for point, occurrence in matrix[::MATRIX_STRIDE]:
        store, images = crashed_run(spec, point, occurrence)
        stack = remount(spec, store, images)
        check_recovered(stack, files, deleted_path, f"{point}#{occurrence}")


# --------------------------------------------------------------------------- cluster-size sweep


@pytest.mark.parametrize("nodes", [1, 2, 3, 4])
@pytest.mark.parametrize(
    "point",
    ["migrate.flip.pre", "migrate.commit.pre", "migrate.commit.post", "wal.commit.torn"],
)
def test_crash_boundaries_across_cluster_sizes(nodes, point):
    """The decisive boundaries — flip, either side of the durability
    barrier, and a torn group commit — swept over 1..4 nodes."""
    volumes_per_node = 2 if nodes == 1 else 1
    spec = crash_spec(nodes, volumes_per_node, "hash")
    matrix, files, migrated, deleted_path = reference_run(spec)
    assert migrated
    pairs = [pair for pair in matrix if pair[0] == point]
    if not pairs:
        pytest.skip(f"{point} not visited at nodes={nodes}")
    point, occurrence = pairs[0]
    store, images = crashed_run(spec, point, occurrence)
    stack = remount(spec, store, images)
    check_recovered(stack, files, deleted_path, f"nodes={nodes} {point}#{occurrence}")


# --------------------------------------------------------------------------- clean remounts


def test_clean_remount_rewrites_no_manifest():
    """A remount whose recovery replays nothing must not mark the tier
    dirty: unmounting again rewrites no manifest (the durable bytes are
    already exact), so repeated clean mount/unmount cycles are write-free."""
    spec = crash_spec(nodes=2, volumes_per_node=1, placement="hash")
    store = DurableStore()
    stack = build_crash_stack(spec, store)
    files, migrated, deleted_path = drive_workload(stack)
    assert migrated
    images = [
        driver.snapshot() for node in stack.cluster.nodes for driver in node.drivers
    ]
    for _ in range(3):
        stack = remount(spec, store, images)
        assert stack.metadata.replayed_records == 0  # all folded at unmount
        run(stack.scheduler, stack.fs.unmount)
        assert stack.metadata.manifest_store.snapshot()["writes"] == 0, (
            "clean remount + unmount rewrote an identical manifest"
        )
        images = [
            d.snapshot() for node in stack.cluster.nodes for d in node.drivers
        ]
    stack = remount(spec, store, images)
    check_recovered(stack, files, deleted_path, "after three clean remount cycles")


# --------------------------------------------------------------------------- replica repair matrix


def replica_crash_spec():
    spec = crash_spec(nodes=3, volumes_per_node=1, placement="hash")
    return StackSpec(
        cache=spec.cache,
        flush=spec.flush,
        layout=spec.layout,
        array=spec.array,
        cluster=ClusterConfig(
            nodes=3,
            rebalance=False,
            wal_checkpoint_bytes=256,
            replicas=1,
            repair_interval=0.5,
        ),
    )


def drive_replica_workload(stack):
    """Create replicated files, kill volume 0 (scrub **off** — the crash
    harness revives the volume's bytes at remount), let the repair daemon
    restore full replication, unmount.

    No writes happen after the kill: volume death is runtime state and
    does not survive the whole-stack crash, so a post-kill write would
    legitimately be missing from the revived old primary."""
    from repro.core.faults import FaultEvent, FaultInjector

    scheduler = stack.scheduler
    client = stack.client
    fs = stack.fs

    def body():
        yield from fs.mount(True)
        files = []
        for i in range(NUM_FILES):
            path = f"/f{i}"
            handle = yield from client.create(path)
            yield from client.write(handle, 0, payload(i))
            yield from client.fsync(handle)
            yield from client.close(handle)
            file = yield from client.lookup(path)
            files.append((path, file.file_id))
        yield from fs.sync()
        return files

    files = scheduler.run_until_complete(scheduler.spawn(body))
    injector = FaultInjector(
        scheduler,
        stack.cluster.faults,
        [FaultEvent(time=scheduler.now + 0.1, kind="disk_fail", target=0)],
        topology=stack.cluster,
    )
    injector.start()
    scheduler.run(until=scheduler.now + 0.2, inclusive=True)
    assert injector.applied == 1
    manager = stack.cluster.replication
    deadline = scheduler.now + 30.0
    while manager.under_replicated_files() and scheduler.now < deadline:
        scheduler.run(until=scheduler.now + 1.0, inclusive=True)
    assert manager.under_replicated_files() == 0
    thread = scheduler.spawn(fs.unmount)
    scheduler.run_until_complete(thread)
    return files


def test_crash_at_every_repair_step_recovers_byte_identical():
    """Satellite of the replication tier: the repair state machine —
    promote (FLIP + RSET) and re-replicate (clone + RSET) — swept with the
    same crash-at-every-boundary discipline as migrations."""
    spec = replica_crash_spec()
    crashpoints = CrashPoints(recording=True)
    stack = build_crash_stack(spec, DurableStore(), crashpoints)
    files = drive_replica_workload(stack)
    matrix = [pair for pair in crashpoints.seen if pair[0].startswith("repair.")]
    points = {point for point, _ in matrix}
    assert {"repair.flip.pre", "repair.clone.pre", "repair.commit.pre"} <= points, (
        f"repair matrix too thin: {sorted(points)}"
    )
    for point, occurrence in matrix[::MATRIX_STRIDE]:
        store = DurableStore()
        stack = build_crash_stack(spec, store, CrashPoints(arm=(point, occurrence)))
        with pytest.raises(SimulatedCrash) as exc_info:
            drive_replica_workload(stack)
        assert exc_info.value.point == point
        images = [
            d.snapshot() for node in stack.cluster.nodes for d in node.drivers
        ]
        stack = remount(spec, store, images)
        check_recovered(stack, files, None, f"{point}#{occurrence}")


# --------------------------------------------------------------------------- the PATSY world


def test_patsy_crash_leaves_a_replayable_charged_journal():
    """The same crash discipline in the simulated world: no real bytes
    exist, so the contract is the routing table — a committed flip must
    recover to the new home, an uncommitted one must not — and the journal
    replay must cost simulated time (the metadata device charges it)."""
    spec = crash_spec(nodes=2, volumes_per_node=1, placement="hash")
    recording = CrashPoints(recording=True)
    stack = build_crash_stack(spec, DurableStore(), recording, simulated=True)
    drive_workload(stack, with_data=False)
    assert ("migrate.commit.post", 0) in recording.seen

    store = DurableStore()
    stack = build_crash_stack(
        spec, store, CrashPoints(arm=("migrate.commit.post", 0)), simulated=True
    )
    with pytest.raises(SimulatedCrash):
        drive_workload(stack, with_data=False)

    # The durable journal proves exactly one committed migration.
    records, _ = decode_wal(bytes(store.wal))
    flips = [r for r in records if r.rtype == REC_FLIP]
    commits = {}
    for record in records:
        if record.rtype == REC_COMMIT:
            commits.setdefault(record.file_id, []).append(record.lsn)
    committed = [
        r for r in flips if any(lsn > r.lsn for lsn in commits.get(r.file_id, ()))
    ]
    assert committed

    fresh = build_crash_stack(spec, store, simulated=True)
    scheduler = fresh.scheduler
    before = scheduler.now
    run(scheduler, fresh.metadata.recover)
    assert scheduler.now > before  # the journal read was charged as time
    assert fresh.metadata.replayed_records > 0
    placement = fresh.cluster.placement
    for record in committed:
        assert placement.volume_of_file(record.file_id) == record.arg
