"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.core import codec
from repro.core.clock import VirtualClock
from repro.core.inode import FileKind, Inode
from repro.core.scheduler import Delay, FifoSchedulingPolicy, Scheduler
from repro.core.storage.allocator import BlockAllocator
from repro.config import CacheConfig
from repro.core.cache import BlockCache
from repro.core.driver import IOKind, IORequest
from repro.core.iosched import make_io_scheduler
from repro.analysis.cdf import cumulative_distribution, fraction_at_or_below
from repro.core.namespace import normalize_path, split_path
from repro.patsy.diskspec import HP97560


# --------------------------------------------------------------------------- codec round trips


@given(
    number=st.integers(min_value=1, max_value=2**31 - 1),
    size=st.integers(min_value=0, max_value=2**40),
    nlink=st.integers(min_value=0, max_value=1000),
    block_map=st.dictionaries(
        st.integers(min_value=0, max_value=2**20),
        st.integers(min_value=0, max_value=2**40),
        max_size=50,
    ),
    kind=st.sampled_from(list(FileKind)),
    target=st.text(max_size=40).filter(lambda s: "\x00" not in s),
)
@settings(max_examples=60, deadline=None)
def test_inode_codec_roundtrip(number, size, nlink, block_map, kind, target):
    inode = Inode(
        number=number, kind=kind, size=size, nlink=nlink, block_map=dict(block_map),
        symlink_target=target,
    )
    unpacked = codec.unpack_inode(codec.pack_inode(inode))
    assert unpacked.number == number
    assert unpacked.size == size
    assert unpacked.block_map == block_map
    assert unpacked.symlink_target == target
    assert unpacked.kind is kind


@given(
    entries=st.dictionaries(
        st.text(
            alphabet=st.characters(blacklist_characters="/\x00", blacklist_categories=("Cs",)),
            min_size=1,
            max_size=32,
        ),
        st.integers(min_value=1, max_value=2**31 - 1),
        max_size=40,
    )
)
@settings(max_examples=60, deadline=None)
def test_directory_codec_roundtrip(entries):
    assert codec.unpack_directory(codec.pack_directory(entries)) == entries


@given(
    inode_map=st.dictionaries(
        st.integers(min_value=1, max_value=10_000),
        st.tuples(st.integers(min_value=0, max_value=2**40), st.integers(min_value=1, max_value=16)),
        max_size=30,
    ),
    usage=st.dictionaries(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=2**30),
        max_size=30,
    ),
)
@settings(max_examples=40, deadline=None)
def test_checkpoint_codec_roundtrip(inode_map, usage):
    packed = codec.pack_checkpoint(1.5, 99, 3, inode_map, usage)
    fields = codec.unpack_checkpoint(packed)
    assert fields["inode_map"] == inode_map
    assert fields["segment_usage"] == usage


# --------------------------------------------------------------------------- allocator invariants


@given(st.lists(st.sampled_from(["alloc", "free"]), min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_allocator_never_double_allocates(operations):
    allocator = BlockAllocator(first_block=100, num_blocks=32)
    allocated = set()
    for op in operations:
        if op == "alloc" and allocator.free_count > 0:
            address = allocator.allocate()
            assert address not in allocated
            allocated.add(address)
        elif op == "free" and allocated:
            address = allocated.pop()
            allocator.free(address)
        assert allocator.free_count + len(allocated) == 32


# --------------------------------------------------------------------------- I/O schedulers


@given(
    sectors=st.lists(st.integers(min_value=0, max_value=100_000), min_size=1, max_size=40),
    head=st.integers(min_value=0, max_value=100_000),
    policy=st.sampled_from(["fcfs", "clook", "look", "scan", "cscan", "scan-edf"]),
)
@settings(max_examples=60, deadline=None)
def test_io_schedulers_serve_every_request_exactly_once(sectors, head, policy):
    scheduler = make_io_scheduler(policy)
    requests = [IORequest(kind=IOKind.READ, sector=s, count=1) for s in sectors]
    for request in requests:
        scheduler.add(request)
    served = []
    position = head
    while len(scheduler):
        request = scheduler.next(position)
        assert request is not None
        served.append(request)
        position = request.sector
    assert len(served) == len(requests)
    assert {id(r) for r in served} == {id(r) for r in requests}


# --------------------------------------------------------------------------- scheduler time


@given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=20))
@settings(max_examples=40, deadline=None)
def test_scheduler_time_is_monotone_and_reaches_max_delay(delays):
    scheduler = Scheduler(clock=VirtualClock(), policy=FifoSchedulingPolicy())
    observed = []

    def sleeper(duration):
        yield Delay(duration)
        observed.append(scheduler.now)

    for delay in delays:
        scheduler.spawn(sleeper, delay)
    scheduler.run()
    assert scheduler.now >= max(delays) - 1e-9
    assert all(b >= a - 1e-9 for a, b in zip(observed, observed[1:]))


# --------------------------------------------------------------------------- cache invariants


@given(
    operations=st.lists(
        st.tuples(
            st.sampled_from(["alloc", "dirty", "clean", "invalidate"]),
            st.integers(min_value=0, max_value=5),
            st.integers(min_value=0, max_value=7),
        ),
        min_size=1,
        max_size=80,
    )
)
@settings(max_examples=40, deadline=None)
def test_cache_list_accounting_invariant(operations):
    scheduler = Scheduler(clock=VirtualClock(), policy=FifoSchedulingPolicy())
    cache = BlockCache(scheduler, CacheConfig(size_bytes=16 * 4096), with_data=False)

    def writeback(file_id, block_nos):
        return
        yield  # pragma: no cover

    cache.writeback = writeback

    def body():
        for op, file_id, block_no in operations:
            block = cache.peek(file_id, block_no)
            if op == "alloc" and block is None:
                yield from cache.allocate(file_id, block_no)
            elif op == "dirty" and block is not None:
                yield from cache.mark_dirty(block)
            elif op == "clean" and block is not None:
                cache.mark_clean(block)
            elif op == "invalidate" and block is not None:
                cache.invalidate(block)
            assert cache.free_count + cache.clean_count + cache.dirty_count == cache.num_blocks
            assert cache.cached_count == cache.clean_count + cache.dirty_count

    thread = scheduler.spawn(body)
    scheduler.run_until_complete(thread)


# --------------------------------------------------------------------------- misc


@given(st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_cdf_is_monotone_and_complete(values):
    cdf = cumulative_distribution(values, points=50)
    fractions = [f for _, f in cdf]
    xs = [x for x, _ in cdf]
    assert xs == sorted(xs)
    assert fractions == sorted(fractions)
    assert fractions[-1] == 1.0
    assert fraction_at_or_below(values, max(values)) == 1.0


@given(st.integers(min_value=0, max_value=HP97560.num_sectors - 1))
@settings(max_examples=60, deadline=None)
def test_disk_decompose_within_geometry(sector):
    cylinder, head, sector_in_track = HP97560.decompose(sector)
    assert 0 <= cylinder < HP97560.cylinders
    assert 0 <= head < HP97560.heads
    assert 0 <= sector_in_track < HP97560.sectors_per_track


@given(
    st.lists(
        st.text(
            alphabet=st.characters(blacklist_characters="/\x00", blacklist_categories=("Cs",)),
            min_size=1,
            max_size=8,
        ).filter(lambda s: s not in (".", "..")),
        max_size=6,
    )
)
@settings(max_examples=50, deadline=None)
def test_path_normalisation_idempotent(components):
    path = "/" + "/".join(components)
    assert split_path(path) == components
    assert normalize_path(normalize_path(path)) == normalize_path(path)
