"""The abstract client interface and file types over a real (memory) backend."""

import pytest

from repro.core.client import AbstractClientInterface
from repro.core.filetypes import DirectoryFile, MultimediaFile
from repro.core.inode import FileKind
from repro.errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    IsADirectory,
    NotADirectory,
    StaleHandle,
)
from tests.conftest import run


@pytest.fixture
def client(memory_fs):
    return AbstractClientInterface(memory_fs, auto_materialize=False)


def test_create_write_read_roundtrip(scheduler, client):
    def body():
        handle = yield from client.create("/file.txt")
        yield from client.write(handle, 0, b"hello world")
        data = yield from client.read(handle, 0, 11)
        yield from client.close(handle)
        return data

    assert run(scheduler, body) == b"hello world"


def test_read_past_eof_truncated(scheduler, client):
    def body():
        handle = yield from client.create("/f")
        yield from client.write(handle, 0, b"12345")
        return (yield from client.read(handle, 3, 100))

    assert run(scheduler, body) == b"45"


def test_sparse_file_reads_zeros(scheduler, client):
    def body():
        handle = yield from client.create("/sparse")
        yield from client.write(handle, 10000, b"end")
        return (yield from client.read(handle, 0, 8))

    assert run(scheduler, body) == bytes(8)


def test_create_exclusive_conflict(scheduler, client):
    def body():
        handle = yield from client.create("/dup")
        yield from client.close(handle)
        yield from client.create("/dup")

    with pytest.raises(FileExists):
        run(scheduler, body)


def test_open_missing_file_raises(scheduler, client):
    with pytest.raises(FileNotFound):
        run(scheduler, client.open, "/nope")


def test_mkdir_readdir_rmdir(scheduler, client):
    def body():
        yield from client.mkdir("/dir")
        handle = yield from client.create("/dir/a")
        yield from client.close(handle)
        entries = yield from client.readdir("/dir")
        yield from client.unlink("/dir/a")
        yield from client.rmdir("/dir")
        root = yield from client.readdir("/")
        return entries, root

    entries, root = run(scheduler, body)
    assert "a" in entries
    assert "dir" not in root


def test_rmdir_non_empty_rejected(scheduler, client):
    def body():
        yield from client.mkdir("/d")
        handle = yield from client.create("/d/f")
        yield from client.close(handle)
        yield from client.rmdir("/d")

    with pytest.raises(DirectoryNotEmpty):
        run(scheduler, body)


def test_unlink_directory_rejected(scheduler, client):
    def body():
        yield from client.mkdir("/d")
        yield from client.unlink("/d")

    with pytest.raises(IsADirectory):
        run(scheduler, body)


def test_path_component_through_file_rejected(scheduler, client):
    def body():
        handle = yield from client.create("/plain")
        yield from client.close(handle)
        yield from client.stat("/plain/child")

    with pytest.raises(NotADirectory):
        run(scheduler, body)


def test_rename_moves_entry(scheduler, client):
    def body():
        yield from client.mkdir("/a")
        yield from client.mkdir("/b")
        handle = yield from client.create("/a/f")
        yield from client.write(handle, 0, b"data")
        yield from client.close(handle)
        yield from client.rename("/a/f", "/b/g")
        moved = yield from client.read_file("/b/g", 0, 4)
        old_exists = yield from client.exists("/a/f")
        return moved, old_exists

    moved, old_exists = run(scheduler, body)
    assert moved == b"data"
    assert old_exists is False


def test_symlink_and_resolution(scheduler, client):
    def body():
        yield from client.mkdir("/real")
        handle = yield from client.create("/real/target")
        yield from client.write(handle, 0, b"via-link")
        yield from client.close(handle)
        yield from client.symlink("/real/target", "/link")
        target = yield from client.readlink("/link")
        data = yield from client.read_file("/link", 0, 8)
        return target, data

    target, data = run(scheduler, body)
    assert target == "/real/target"
    assert data == b"via-link"


def test_truncate_shrinks_and_discards(scheduler, client, memory_fs):
    def body():
        handle = yield from client.create("/t")
        yield from client.write(handle, 0, b"A" * 10000)
        yield from client.truncate(handle, 100)
        stat = yield from client.stat("/t")
        data = yield from client.read(handle, 0, 200)
        yield from client.close(handle)
        return stat, data

    stat, data = run(scheduler, body)
    assert stat["size"] == 100
    assert data == b"A" * 100


def test_unlink_counts_write_savings(scheduler, client, memory_fs):
    def body():
        handle = yield from client.create("/doomed")
        yield from client.write(handle, 0, b"B" * 8192)
        yield from client.close(handle)
        yield from client.unlink("/doomed")

    run(scheduler, body)
    assert memory_fs.cache.stats.dirty_blocks_discarded >= 2


def test_stale_handle_detected(scheduler, client):
    def body():
        handle = yield from client.create("/h")
        yield from client.close(handle)
        yield from client.read(handle, 0, 1)

    with pytest.raises(StaleHandle):
        run(scheduler, body)


def test_stat_fields(scheduler, client):
    def body():
        yield from client.mkdir("/sd")
        return (yield from client.stat("/sd"))

    stat = run(scheduler, body)
    assert stat["kind"] == "directory"
    assert stat["nlink"] >= 2


def test_fsync_writes_dirty_blocks(scheduler, client, memory_fs):
    def body():
        handle = yield from client.create("/sync-me")
        yield from client.write(handle, 0, b"C" * 4096)
        written = yield from client.fsync(handle)
        yield from client.close(handle)
        return written

    assert run(scheduler, body) == 1
    assert memory_fs.cache.dirty_count == 0


def test_auto_materialize_creates_missing_paths(scheduler, memory_fs):
    client = AbstractClientInterface(memory_fs, auto_materialize=True)

    def body():
        data = yield from client.read_file("/pre/existing/file.dat", 0, 4096)
        stat = yield from client.stat("/pre/existing/file.dat")
        return data, stat

    data, stat = run(scheduler, body)
    assert len(data) == 4096
    assert stat["size"] >= 4096
    assert client.stats.files_materialized >= 1


def test_multimedia_file_budget(scheduler, memory_fs):
    client = AbstractClientInterface(memory_fs, auto_materialize=False)

    def body():
        handle = yield from client.open_multimedia("/movie")
        entry = memory_fs.file_table.get_handle(handle)
        assert isinstance(entry.file, MultimediaFile)
        entry.file.budget = 4
        yield from client.write(handle, 0, b"M" * (20 * 4096))
        yield from client.fsync(handle)
        # Stream sequentially; the file must keep its cache footprint bounded.
        for block in range(20):
            yield from client.read(handle, block * 4096, 4096)
        resident = len(memory_fs.cache.cached_blocks_of(entry.file.file_id))
        yield from client.close(handle)
        return resident

    assert run(scheduler, body) <= 5


def test_client_statistics_counters(scheduler, client):
    def body():
        handle = yield from client.create("/counted")
        yield from client.write(handle, 0, b"xyz")
        yield from client.read(handle, 0, 3)
        yield from client.close(handle)

    run(scheduler, body)
    assert client.stats.operations["create"] == 1
    assert client.stats.bytes_written == 3
    assert client.stats.bytes_read == 3
    assert client.stats.total_operations >= 4


def test_root_directory_is_directory_file(memory_fs):
    assert isinstance(memory_fs.root_directory(), DirectoryFile)
    assert memory_fs.root_directory().inode.kind is FileKind.DIRECTORY
