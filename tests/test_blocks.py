"""Cache blocks: state, pinning, bookkeeping."""

import pytest

from repro.core.blocks import BlockId, BlockState, CacheBlock
from repro.errors import CacheError


def test_new_block_is_free():
    block = CacheBlock(slot=0, size=4096, with_data=True)
    assert block.is_free
    assert not block.is_dirty
    assert block.data is not None and len(block.data) == 4096


def test_block_without_data():
    block = CacheBlock(slot=1, size=4096, with_data=False)
    assert block.data is None
    assert not block.has_data


def test_block_id_str():
    assert str(BlockId(5, 7)) == "5:7"


def test_pin_unpin():
    block = CacheBlock(0, 4096, True)
    block.pin()
    block.pin()
    assert block.pinned and block.pin_count == 2
    block.unpin()
    block.unpin()
    assert not block.pinned
    with pytest.raises(CacheError):
        block.unpin()


def test_record_access_history_bounded():
    block = CacheBlock(0, 4096, False)
    for t in range(10):
        block.record_access(float(t))
    assert block.access_count == 10
    assert block.last_access == 9.0
    assert len(block.access_history) == 4
    assert block.access_history == [6.0, 7.0, 8.0, 9.0]


def test_reset_clears_state_and_data():
    block = CacheBlock(0, 16, True)
    block.block_id = BlockId(1, 2)
    block.state = BlockState.DIRTY
    block.data[:4] = b"abcd"
    block.dirty_since = 5.0
    block.reset()
    assert block.is_free
    assert block.block_id is None
    assert block.dirty_since is None
    assert bytes(block.data) == bytes(16)


def test_reset_pinned_block_rejected():
    block = CacheBlock(0, 4096, False)
    block.pin()
    with pytest.raises(CacheError):
        block.reset()
