"""The cooperative thread scheduler: threads, events, virtual time."""

import pytest

from repro.core.clock import VirtualClock
from repro.core.scheduler import (
    Delay,
    Event,
    FifoSchedulingPolicy,
    RandomSchedulingPolicy,
    Reschedule,
    Scheduler,
    ThreadState,
)
from repro.errors import DeadlockError, SchedulerError
from tests.conftest import run


def test_spawn_and_run_simple_thread(scheduler):
    log = []

    def body():
        log.append("ran")
        return 42
        yield  # pragma: no cover

    thread = scheduler.spawn(body)
    result = scheduler.run_until_complete(thread)
    assert result == 42
    assert log == ["ran"]
    assert thread.state is ThreadState.FINISHED


def test_delay_advances_virtual_time(scheduler):
    def body():
        yield Delay(5.0)
        yield Delay(2.5)
        return scheduler.now

    result = run(scheduler, body)
    assert result == pytest.approx(7.5)
    assert scheduler.now == pytest.approx(7.5)


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        Delay(-1.0)


def test_sleep_helper(scheduler):
    def body():
        yield from scheduler.sleep(3.0)
        return "done"

    assert run(scheduler, body) == "done"
    assert scheduler.now == pytest.approx(3.0)


def test_event_signal_wakes_waiter(scheduler):
    event = scheduler.new_event("test")
    values = []

    def waiter():
        value = yield from event.wait()
        values.append(value)

    def signaller():
        yield Delay(1.0)
        event.signal("hello")

    t1 = scheduler.spawn(waiter)
    scheduler.spawn(signaller)
    scheduler.run_until_complete(t1)
    assert values == ["hello"]
    assert scheduler.now == pytest.approx(1.0)


def test_event_signal_before_wait_is_latched(scheduler):
    event = scheduler.new_event()
    event.signal("early")
    assert event.is_signalled

    def waiter():
        return (yield from event.wait())

    assert run(scheduler, waiter) == "early"
    assert not event.is_signalled


def test_event_broadcast_wakes_all_waiters(scheduler):
    event = scheduler.new_event()
    woken = []

    def waiter(name):
        yield from event.wait()
        woken.append(name)

    threads = [scheduler.spawn(waiter, i) for i in range(3)]

    def signaller():
        yield Delay(0.1)
        assert event.waiter_count == 3
        event.signal()

    scheduler.spawn(signaller)
    for thread in threads:
        scheduler.run_until_complete(thread)
    assert sorted(woken) == [0, 1, 2]


def test_event_clear_drops_latched_signal(scheduler):
    event = scheduler.new_event()
    event.signal()
    event.clear()
    assert not event.is_signalled


def test_reschedule_keeps_thread_runnable(fifo_scheduler):
    order = []

    def yielder():
        order.append("a1")
        yield Reschedule()
        order.append("a2")

    def other():
        order.append("b")
        return
        yield  # pragma: no cover

    t1 = fifo_scheduler.spawn(yielder)
    fifo_scheduler.spawn(other)
    fifo_scheduler.run_until_complete(t1)
    assert order == ["a1", "b", "a2"]


def test_join_returns_result(scheduler):
    def worker():
        yield Delay(2.0)
        return "worker-result"

    def parent():
        child = scheduler.spawn(worker)
        result = yield from child.join()
        return result

    assert run(scheduler, parent) == "worker-result"


def test_join_reraises_child_exception(scheduler):
    def worker():
        yield Delay(1.0)
        raise ValueError("boom")

    def parent():
        child = scheduler.spawn(worker)
        try:
            yield from child.join()
        except ValueError as exc:
            return str(exc)
        return "no error"

    assert run(scheduler, parent) == "boom"


def test_unhandled_thread_failure_raises_from_run(scheduler):
    def failing():
        yield Delay(0.1)
        raise RuntimeError("unhandled")

    scheduler.spawn(failing)
    with pytest.raises(SchedulerError):
        scheduler.run()


def test_run_until_complete_raises_thread_exception(scheduler):
    def failing():
        yield Delay(0.1)
        raise KeyError("missing")

    thread = scheduler.spawn(failing)
    with pytest.raises(KeyError):
        scheduler.run_until_complete(thread)


def test_deadlock_detection(scheduler):
    event = scheduler.new_event()

    def stuck():
        yield from event.wait()

    thread = scheduler.spawn(stuck)
    with pytest.raises(DeadlockError):
        scheduler.run_until_complete(thread)


def test_run_until_time_bound(scheduler):
    def forever():
        while True:
            yield Delay(1.0)

    scheduler.spawn(forever, daemon=True)
    stopped_at = scheduler.run(until=10.0)
    assert stopped_at >= 10.0
    assert scheduler.now >= 10.0


def test_run_returns_when_nothing_left(scheduler):
    def short():
        yield Delay(0.5)

    scheduler.spawn(short)
    end = scheduler.run()
    assert end == pytest.approx(0.5)


def test_random_policy_is_seed_deterministic():
    def make(seed):
        sched = Scheduler(clock=VirtualClock(), seed=seed, policy=RandomSchedulingPolicy())
        order = []

        def body(name):
            order.append(name)
            yield Delay(0.1)
            order.append(name)

        for i in range(5):
            sched.spawn(body, i)
        sched.run()
        return order

    assert make(1) == make(1)
    assert make(1) != make(2) or make(3) != make(4)  # at least some variation across seeds


def test_fifo_policy_runs_in_spawn_order():
    sched = Scheduler(clock=VirtualClock(), policy=FifoSchedulingPolicy())
    order = []

    def body(name):
        order.append(name)
        return
        yield  # pragma: no cover

    for i in range(4):
        sched.spawn(body, i)
    sched.run()
    assert order == [0, 1, 2, 3]


def test_spawn_rejects_non_generator(scheduler):
    with pytest.raises(SchedulerError):
        scheduler.spawn(lambda: 42)


def test_unknown_yield_command_fails_thread(scheduler):
    def bad():
        yield "not-a-command"

    thread = scheduler.spawn(bad)
    with pytest.raises(SchedulerError):
        scheduler.run_until_complete(thread)


def test_context_switch_counter(scheduler):
    def body():
        yield Delay(0.1)
        yield Delay(0.1)

    run(scheduler, body)
    assert scheduler.context_switches >= 3


def test_delayed_threads_wake_in_time_order(fifo_scheduler):
    order = []

    def sleeper(name, duration):
        yield Delay(duration)
        order.append(name)

    fifo_scheduler.spawn(sleeper, "late", 5.0)
    fifo_scheduler.spawn(sleeper, "early", 1.0)
    fifo_scheduler.spawn(sleeper, "middle", 3.0)
    fifo_scheduler.run()
    assert order == ["early", "middle", "late"]


def test_threads_property_and_names(scheduler):
    def body():
        return
        yield  # pragma: no cover

    thread = scheduler.spawn(body, name="my-thread")
    assert thread.name == "my-thread"
    assert thread in scheduler.threads
    scheduler.run()
