"""Synchronisation primitives: semaphores, resources, channels."""

import pytest

from repro.core.scheduler import Delay
from repro.core.sync import Channel, Mutex, Resource, Semaphore
from repro.errors import SchedulerError
from tests.conftest import run


def test_semaphore_immediate_acquire(scheduler):
    sem = Semaphore(scheduler, value=2)

    def body():
        yield from sem.acquire()
        yield from sem.acquire()
        return sem.value

    assert run(scheduler, body) == 0


def test_semaphore_blocks_and_wakes_fifo(fifo_scheduler):
    sem = Semaphore(fifo_scheduler, value=1)
    order = []

    def holder():
        yield from sem.acquire()
        order.append("holder")
        yield Delay(2.0)
        sem.release()

    def waiter(name):
        yield from sem.acquire()
        order.append(name)
        sem.release()

    t1 = fifo_scheduler.spawn(holder)
    t2 = fifo_scheduler.spawn(waiter, "w1")
    t3 = fifo_scheduler.spawn(waiter, "w2")
    for t in (t1, t2, t3):
        fifo_scheduler.run_until_complete(t)
    assert order == ["holder", "w1", "w2"]


def test_mutex_locked_state(scheduler):
    mutex = Mutex(scheduler)

    def body():
        assert not mutex.locked()
        yield from mutex.acquire()
        assert mutex.locked()
        mutex.release()
        return mutex.locked()

    assert run(scheduler, body) is False


def test_resource_capacity_and_contention(fifo_scheduler):
    resource = Resource(fifo_scheduler, capacity=1, name="bus")
    timeline = []

    def user(name, hold):
        yield from resource.acquire()
        timeline.append((name, fifo_scheduler.now))
        yield Delay(hold)
        resource.release()

    threads = [fifo_scheduler.spawn(user, i, 1.0) for i in range(3)]
    for t in threads:
        fifo_scheduler.run_until_complete(t)
    starts = [start for _, start in timeline]
    assert starts == pytest.approx([0.0, 1.0, 2.0])
    assert resource.total_acquisitions == 3
    assert resource.mean_wait_time > 0.0


def test_resource_use_helper(scheduler):
    resource = Resource(scheduler, capacity=1)

    def body():
        yield from resource.use(0.5)
        return resource.in_use

    assert run(scheduler, body) == 0
    assert scheduler.now == pytest.approx(0.5)


def test_resource_release_without_acquire_raises(scheduler):
    resource = Resource(scheduler, capacity=1)
    with pytest.raises(SchedulerError):
        resource.release()


def test_resource_rejects_zero_capacity(scheduler):
    with pytest.raises(ValueError):
        Resource(scheduler, capacity=0)


def test_channel_put_then_get(scheduler):
    channel = Channel(scheduler)
    channel.put("a")
    channel.put("b")

    def body():
        first = yield from channel.get()
        second = yield from channel.get()
        return [first, second]

    assert run(scheduler, body) == ["a", "b"]
    assert channel.empty


def test_channel_get_blocks_until_put(scheduler):
    channel = Channel(scheduler)
    results = []

    def consumer():
        item = yield from channel.get()
        results.append((item, scheduler.now))

    def producer():
        yield Delay(3.0)
        channel.put("late-item")

    t = scheduler.spawn(consumer)
    scheduler.spawn(producer)
    scheduler.run_until_complete(t)
    assert results == [("late-item", pytest.approx(3.0))]


def test_channel_try_get(scheduler):
    channel = Channel(scheduler)
    assert channel.try_get() is None
    channel.put(1)
    assert channel.try_get() == 1
    assert channel.try_get() is None


def test_channel_depth_statistics(scheduler):
    channel = Channel(scheduler)
    for i in range(5):
        channel.put(i)
    assert len(channel) == 5
    assert channel.max_depth == 5
    assert channel.total_puts == 5


def test_semaphore_rejects_negative_value(scheduler):
    with pytest.raises(ValueError):
        Semaphore(scheduler, value=-1)
