"""The LSM-style LFS segment indexes: blooms, sparse offsets, utilisation
buckets, lazy mounts, coalesced reads and the index-off equivalence pin.

The property test at the bottom drives a real (byte-moving) index-on layout
through random write/overwrite/release/clean/checkpoint-remount sequences
and checks the invariants that make the index safe to consult:

* a segment's bloom never produces a false negative for an entry its
  summary holds (a negative must be authoritative);
* every sparse-index sample points at the exact summary offset;
* the index's live counter equals the segment's usage counter;
* the utilisation buckets track exactly the sealed non-free segments, each
  in the bucket its usage dictates;
* the incremental free-block/free-heap accounting matches a from-scratch
  recount.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import (
    ArrayConfig,
    CacheConfig,
    ClusterConfig,
    FlushConfig,
    LayoutConfig,
)
from repro.assembly.bindings import OnlineBinding
from repro.assembly.builder import build_stack
from repro.assembly.spec import StackSpec
from repro.core import codec
from repro.core.blocks import CacheBlock
from repro.core.clock import VirtualClock
from repro.core.inode import FileKind
from repro.core.scheduler import Scheduler
from repro.core.storage.lfs import LogStructuredLayout
from repro.core.storage.segindex import (
    BloomFilter,
    SegmentIndex,
    SegmentIndexConfig,
    UtilisationBuckets,
    entry_key,
    owner_key,
)
from repro.core.storage.volume import LocalVolume
from repro.errors import ConfigurationError
from repro.pfs.diskfile import MemoryBackedDiskDriver
from repro.units import KB, MB
from tests.conftest import run

INDEX = SegmentIndexConfig()


def make_layout(
    scheduler,
    simulated=False,
    disk_mb=8,
    segment_blocks=8,
    disks=1,
    index_config=INDEX,
):
    drivers = [
        MemoryBackedDiskDriver(scheduler, size_bytes=disk_mb * MB, name=f"d{i}")
        for i in range(disks)
    ]
    volume = LocalVolume(drivers, block_size=4 * KB)
    layout = LogStructuredLayout(
        scheduler,
        volume,
        block_size=4 * KB,
        segment_blocks=segment_blocks,
        simulated=simulated,
        index_config=index_config,
    )
    run(scheduler, layout.format)
    run(scheduler, layout.mount)
    return layout


def data_block(payload=b""):
    block = CacheBlock(0, 4 * KB, with_data=True)
    if payload:
        block.data[: len(payload)] = payload
    return block


# --------------------------------------------------------------------------- units


def test_bloom_has_no_false_negatives():
    bloom = BloomFilter(256)
    keys = [entry_key(i, i * 3, bool(i & 1)) for i in range(40)]
    for key in keys:
        bloom.add(key)
    assert all(bloom.may_contain(key) for key in keys)


def test_bloom_rejects_most_absent_keys():
    bloom = BloomFilter(8 * 64)
    for i in range(32):
        bloom.add(owner_key(i))
    misses = sum(not bloom.may_contain(owner_key(i)) for i in range(1000, 2000))
    assert misses > 900  # ~8 bits/key, 4 hashes: fp-rate ~2-3%


def test_bloom_bytes_round_trip():
    bloom = BloomFilter(200, num_hashes=3)
    for i in range(25):
        bloom.add(entry_key(i, i, False))
    clone = BloomFilter.from_bytes(bloom.to_bytes(), bloom.num_bits, bloom.num_hashes)
    assert clone.bits == bloom.bits
    assert all(clone.may_contain(entry_key(i, i, False)) for i in range(25))


def test_segment_index_counters_and_sparse_samples():
    index = SegmentIndex(SegmentIndexConfig(sparse_every=2), capacity=15)
    for offset in range(1, 11):
        index.add(owner=7, logical_block=offset - 1, is_inode=False, offset=offset)
    assert index.entries == 10 and index.live == 10 and index.dead == 0
    # Entries 0, 2, 4, ... were sampled; each points at its exact offset.
    assert index.find(7, 0) == 1
    assert index.find(7, 2) == 3
    assert index.find(7, 1) is None  # unsampled, not absent
    assert index.may_contain(7, 1)
    assert index.may_contain_owner(7)
    for _ in range(4):
        index.kill()
    assert index.live == 6 and index.dead == 4
    assert index.utilisation == 6 / 15


def test_segment_index_rebuild_matches_incremental():
    entries = [(3, i, False) for i in range(6)] + [(4, 0, True)]
    incremental = SegmentIndex(INDEX, capacity=15)
    for offset, (owner, logical, is_inode) in enumerate(entries, start=1):
        incremental.add(owner, logical, is_inode, offset)
    rebuilt = SegmentIndex.rebuild(INDEX, 15, entries, live=5)
    assert rebuilt.bloom.bits == incremental.bloom.bits
    assert rebuilt.sparse == incremental.sparse
    assert rebuilt.entries == 7 and rebuilt.live == 5 and rebuilt.dead == 2


def test_utilisation_buckets_track_and_order():
    buckets = UtilisationBuckets(num_buckets=4)
    buckets.insert(0, live=0, capacity=8)   # bucket 0
    buckets.insert(1, live=7, capacity=8)   # bucket 3
    buckets.insert(2, live=3, capacity=8)   # bucket 1
    assert list(buckets.candidates(limit=2)) == [0, 2]
    assert list(buckets.candidates(limit=0)) == [0, 2, 1]
    buckets.update(1, live=1, capacity=8)   # 3 -> 0
    assert list(buckets.candidates(limit=3)) == [0, 1, 2]
    buckets.update(99, live=0, capacity=8)  # untracked: no-op
    buckets.remove(0)
    assert 0 not in buckets and len(buckets) == 2


def test_index_config_validation():
    with pytest.raises(ConfigurationError):
        SegmentIndexConfig(sparse_every=0)
    with pytest.raises(ConfigurationError):
        SegmentIndexConfig(bloom_bits=0)
    with pytest.raises(ConfigurationError):
        LayoutConfig(index_sparse_every=0)
    assert LayoutConfig(segment_index=False).index_config() is None
    cfg = LayoutConfig(cleaner_candidates=9).index_config()
    assert cfg is not None and cfg.cleaner_candidates == 9


# --------------------------------------------------------------------------- codec


def test_codec_segment_index_round_trip():
    index = SegmentIndex(INDEX, capacity=15)
    for offset in range(1, 9):
        index.add(5, offset - 1, False, offset)
    index.kill()
    packed = codec.pack_segment_index(
        index.entries, index.live, index.dead,
        index.bloom.num_bits, index.bloom.num_hashes, index.bloom.to_bytes(),
        INDEX.sparse_every, index.sparse,
    )
    decoded = codec.unpack_segment_index(packed)
    assert decoded is not None
    assert decoded["entries"] == 8 and decoded["live"] == 7 and decoded["dead"] == 1
    assert decoded["sparse_every"] == INDEX.sparse_every
    assert dict(decoded["sparse"]) == index.sparse
    clone = BloomFilter.from_bytes(
        decoded["bloom_bytes"], decoded["bloom_bits"], decoded["bloom_hashes"]
    )
    assert clone.bits == index.bloom.bits


def test_codec_index_absent_or_torn_returns_none():
    entries = [(1, 0, False), (1, 1, False)]
    summary = codec.pack_segment_summary(entries)
    # A legacy summary block carries no index section.
    assert codec.unpack_segment_index(summary, len(summary)) is None
    assert codec.unpack_segment_index(summary + bytes(64), len(summary)) is None
    index = SegmentIndex(INDEX, capacity=7)
    index.add(1, 0, False, 1)
    packed = codec.pack_segment_index(
        1, 1, 0, index.bloom.num_bits, index.bloom.num_hashes,
        index.bloom.to_bytes(), INDEX.sparse_every, index.sparse,
    )
    # Truncated mid-section: treated as absent, never an exception.
    assert codec.unpack_segment_index(packed[: len(packed) - 3]) is None
    # The summary decoder ignores a trailing index section.
    assert codec.unpack_segment_summary(summary + packed) == entries


# --------------------------------------------------------------------------- layout integration


def _write_file(scheduler, layout, blocks, payload_base=0):
    inode = layout.allocate_inode(FileKind.REGULAR)
    pairs = [
        (i, data_block(bytes([(payload_base + i) % 251]) * 32)) for i in range(blocks)
    ]
    run(scheduler, layout.write_file_blocks, inode, pairs)
    run(scheduler, layout.write_inode, inode)
    return inode


def test_lazy_mount_defers_summary_reads(scheduler):
    layout = make_layout(scheduler, segment_blocks=8)
    for i in range(6):
        _write_file(scheduler, layout, blocks=5, payload_base=i)
    run(scheduler, layout.checkpoint)
    non_free = layout.num_segments - layout.free_segment_count

    remounted = LogStructuredLayout(
        scheduler, layout.volume, block_size=4 * KB, segment_blocks=8,
        index_config=INDEX,
    )
    run(scheduler, remounted.mount)
    # Mount reads the superblock and the checkpoint run — not one summary
    # block per non-free segment.
    assert non_free > 2
    assert remounted.stats.disk_reads == 2
    assert remounted.stats.lazy_summary_loads == 0
    assert len(remounted._unloaded) >= non_free - 1  # minus the new active

    # The first cleaner touch loads exactly that segment's summary (and its
    # persisted index, so nothing is rebuilt from entries).
    victim = remounted.cleaner_candidates()[0].index
    run(scheduler, remounted.clean_segment, victim)
    assert remounted.stats.lazy_summary_loads >= 1
    assert remounted.stats.index_reads >= 1

    # Index-off mounts still pay the full sweep (the pre-index behaviour).
    legacy = LogStructuredLayout(
        scheduler, layout.volume, block_size=4 * KB, segment_blocks=8,
    )
    run(scheduler, legacy.mount)
    assert legacy.stats.disk_reads >= 2 + non_free - 1


def test_cleaner_candidates_bounded_and_contain_greedy_choice(scheduler):
    layout = make_layout(
        scheduler,
        segment_blocks=8,
        index_config=SegmentIndexConfig(cleaner_candidates=4),
    )
    inodes = [_write_file(scheduler, layout, blocks=6, payload_base=i) for i in range(5)]
    # Kill most blocks of the first files to spread utilisation.
    for inode in inodes[:3]:
        run(scheduler, layout.release_blocks, inode, 1)
    candidates = layout.cleaner_candidates()
    full = layout.segment_infos()
    assert 0 < len(candidates) <= 4
    best = min(full, key=lambda info: (info.utilisation, info.index))
    assert best.index in {info.index for info in candidates}
    assert layout.stats.cleaner_candidate_scans == 1
    assert layout.stats.cleaner_candidates_considered == len(candidates)


def test_clean_segment_coalesces_reads_and_preserves_bytes(scheduler):
    layout = make_layout(scheduler, segment_blocks=8)
    inode = _write_file(scheduler, layout, blocks=12, payload_base=3)
    victim = layout.segment_of(inode.get_block_address(0))
    live_before = layout.segment_usage[victim]
    reads_before = layout.stats.disk_reads
    runs_before = layout.stats.cleaner_read_runs
    copied, _ = run(scheduler, layout.clean_segment, victim)
    assert copied > 1
    # Contiguous live blocks were fetched in runs, not one read per block.
    runs = layout.stats.cleaner_read_runs - runs_before
    assert 0 < runs < live_before
    assert layout.stats.disk_reads - reads_before < live_before + 4
    # The copied-forward bytes still read back intact.
    for i in range(12):
        block = data_block()
        assert run(scheduler, layout.read_file_block, inode, i, block)
        assert bytes(block.data[:32]) == bytes([(3 + i) % 251]) * 32


def test_cold_reads_coalesce_into_runs(scheduler):
    layout = make_layout(scheduler, segment_blocks=8)
    inode = _write_file(scheduler, layout, blocks=10, payload_base=1)
    reads_before = layout.stats.disk_reads
    for i in range(10):
        block = data_block()
        assert run(scheduler, layout.read_file_block, inode, i, block)
        assert bytes(block.data[:32]) == bytes([(1 + i) % 251]) * 32
    assert layout.stats.cold_read_runs > 0
    assert layout.stats.coalesced_read_hits == layout.stats.cold_read_blocks_coalesced
    assert layout.stats.coalesced_read_hits > 0
    # Strictly fewer disk reads than blocks.
    assert layout.stats.disk_reads - reads_before == 10 - layout.stats.coalesced_read_hits

    # Index off: the original one-read-per-block path, byte-identical data.
    legacy = make_layout(scheduler, segment_blocks=8, index_config=None)
    legacy_inode = _write_file(scheduler, legacy, blocks=10, payload_base=1)
    reads_before = legacy.stats.disk_reads
    for i in range(10):
        block = data_block()
        assert run(scheduler, legacy.read_file_block, legacy_inode, i, block)
        assert bytes(block.data[:32]) == bytes([(1 + i) % 251]) * 32
    assert legacy.stats.disk_reads - reads_before == 10
    assert legacy.stats.cold_read_runs == 0


def test_overwritten_block_is_never_served_stale_from_staging(scheduler):
    layout = make_layout(scheduler, segment_blocks=8)
    inode = _write_file(scheduler, layout, blocks=4, payload_base=0)
    # Reading block 0 stages blocks 1..3 of the run.
    block = data_block()
    run(scheduler, layout.read_file_block, inode, 0, block)
    # Overwrite block 1: its address moves to the log head, so the staged
    # copy of the old address must not be consulted.
    run(scheduler, layout.write_file_blocks, inode, [(1, data_block(b"fresh!"))])
    block = data_block()
    run(scheduler, layout.read_file_block, inode, 1, block)
    assert bytes(block.data[:6]) == b"fresh!"


def test_may_contain_inode_probe(scheduler):
    layout = make_layout(scheduler, segment_blocks=8)
    inode = _write_file(scheduler, layout, blocks=2)
    assert layout.may_contain_inode(inode.number)
    absent = sum(not layout.may_contain_inode(n) for n in range(50_000, 50_200))
    assert absent > 150  # blooms: almost all unknown inodes are rejected
    assert layout.stats.bloom_skips == absent
    # Index off: the probe always says maybe.
    legacy = make_layout(scheduler, segment_blocks=8, index_config=None)
    assert legacy.may_contain_inode(123_456)


def test_pick_free_segment_matches_reference_scan(scheduler):
    layout = make_layout(scheduler, segment_blocks=8, disks=3, disk_mb=2)

    def reference(last_disk):
        free = layout.free_segments
        disks = layout._segment_disk
        best = min(free)
        other = [s for s in free if disks[s] != last_disk]
        return min(other) if other else best

    rng_segments = sorted(layout.free_segments)[:12]
    for segment in rng_segments:
        expected = reference(layout._last_disk)
        assert layout._pick_free_segment() == expected
        layout._activate_segment(expected)
    # Freeing pushes back into the heaps.
    freed = rng_segments[0]
    layout.free_segments.add(freed)
    layout._free_push(freed)
    assert layout._pick_free_segment() == reference(layout._last_disk)


def test_free_blocks_matches_recount(scheduler):
    layout = make_layout(scheduler, segment_blocks=8)
    inodes = [_write_file(scheduler, layout, blocks=4, payload_base=i) for i in range(4)]
    run(scheduler, layout.release_blocks, inodes[0], 0)
    per_segment = layout.segment_blocks - 1
    live = sum(layout.segment_usage[s] for s in range(layout.num_segments))
    recount = layout.free_segment_count * per_segment + max(
        0, (layout.num_segments - layout.free_segment_count) * per_segment - live
    )
    assert layout.free_blocks == recount
    assert layout._live_total == live


# --------------------------------------------------------------------------- stack equivalence


def _stack_spec(nodes=None, segment_index=True):
    layout = LayoutConfig(segment_size=16 * 4 * KB, segment_index=segment_index)
    return StackSpec(
        cache=CacheConfig(size_bytes=64 * 4 * KB),
        flush=FlushConfig(policy="periodic"),
        layout=layout,
        array=ArrayConfig(volumes=1, buses=1, disks_per_bus=1),
        cluster=ClusterConfig(nodes=nodes, rebalance=False) if nodes else None,
        seed=11,
    )


def _drive_and_read(spec, nodes):
    stack = build_stack(spec, OnlineBinding(size_bytes=16 * MB * max(nodes, 1)))
    scheduler, client = stack.scheduler, stack.client
    run(scheduler, stack.fs.mount, True)
    payloads = {}

    def body():
        for i in range(8):
            path = f"/file{i}"
            data = bytes((i * 41 + j) % 256 for j in range(10 * KB))
            handle = yield from client.create(path)
            yield from client.write(handle, 0, data)
            yield from client.fsync(handle)
            yield from client.close(handle)
            payloads[path] = data
        # Overwrite half of an early file, then read everything back cold.
        handle = yield from client.open("/file0")
        rewrite = bytes(255 - b for b in payloads["/file0"][: 5 * KB])
        yield from client.write(handle, 0, rewrite)
        yield from client.fsync(handle)
        yield from client.close(handle)
        payloads["/file0"] = rewrite + payloads["/file0"][5 * KB :]
        yield from stack.fs.sync()

    run(scheduler, body)
    for path in payloads:
        file = run(scheduler, client.lookup, path)
        stack.cache.invalidate_file(file.file_id)
    contents = {
        path: run(scheduler, client.read_file, path, 0, len(payloads[path]))
        for path in payloads
    }
    assert contents == payloads  # each world is self-consistent
    return contents


@pytest.mark.parametrize("nodes", [1, 4])
def test_index_on_and_off_read_back_identical_bytes(nodes):
    on = _drive_and_read(_stack_spec(nodes=nodes, segment_index=True), nodes)
    off = _drive_and_read(_stack_spec(nodes=nodes, segment_index=False), nodes)
    assert on == off


# --------------------------------------------------------------------------- the property test


@st.composite
def workload_steps(draw):
    return draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("write"), st.integers(0, 5), st.integers(1, 6)),
                st.tuples(st.just("release"), st.integers(0, 5), st.integers(0, 2)),
                st.tuples(st.just("clean"), st.integers(0, 63), st.just(0)),
                st.tuples(st.just("checkpoint"), st.just(0), st.just(0)),
                st.tuples(st.just("remount"), st.just(0), st.just(0)),
            ),
            min_size=4,
            max_size=24,
        )
    )


def _check_invariants(layout):
    capacity = layout.segment_blocks - 1
    for segment, entries in layout.segment_summaries.items():
        index = layout._indexes.get(segment)
        if index is None:
            continue
        for offset, (owner, logical, is_inode) in enumerate(entries, start=1):
            # Blooms: never a false negative.
            assert index.may_contain(owner, logical, is_inode)
            assert index.may_contain_owner(owner)
            found = index.find(owner, logical, is_inode)
            if found is not None and (owner, logical, is_inode) not in entries[offset:]:
                # A sparse sample points at the entry's last occurrence.
                assert entries[found - 1] == (owner, logical, is_inode)
        assert index.entries == len(entries)
        if segment != layout._active_segment:
            assert index.live == layout.segment_usage[segment]
    # Buckets: exactly the sealed, loaded-or-not, non-free segments.
    tracked = set(layout._buckets._where)
    expected = {
        s
        for s in range(layout.num_segments)
        if s not in layout.free_segments and s != layout._active_segment
    }
    assert tracked == expected
    for segment in tracked:
        assert layout._buckets._where[segment] == layout._buckets.bucket_of(
            layout.segment_usage[segment], capacity
        )
    # Incremental free accounting matches a recount.
    assert layout._live_total == sum(layout.segment_usage.values())
    heap_members = {s for heap in layout._free_heaps for s in heap}
    assert layout.free_segments <= heap_members  # heaps may hold stale extras


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(steps=workload_steps())
def test_index_invariants_hold_over_random_histories(steps):
    scheduler = Scheduler(clock=VirtualClock(), seed=7)
    layout = make_layout(scheduler, segment_blocks=8, disk_mb=4)
    inodes = {}
    for op, a, b in steps:
        if op == "write":
            if a not in inodes:
                inodes[a] = layout.allocate_inode(FileKind.REGULAR)
            inode = inodes[a]
            pairs = [(b + i, data_block(bytes([a + 1]) * 16)) for i in range(b)]
            if pairs:
                run(scheduler, layout.write_file_blocks, inode, pairs)
                run(scheduler, layout.write_inode, inode)
        elif op == "release" and a in inodes:
            run(scheduler, layout.release_blocks, inodes[a], b)
            run(scheduler, layout.write_inode, inodes[a])
        elif op == "clean":
            candidates = layout.cleaner_candidates()
            if candidates:
                victim = candidates[a % len(candidates)]
                run(scheduler, layout.clean_segment, victim.index)
        elif op == "checkpoint":
            run(scheduler, layout.checkpoint)
        elif op == "remount":
            run(scheduler, layout.checkpoint)
            layout = LogStructuredLayout(
                scheduler,
                layout.volume,
                block_size=4 * KB,
                segment_blocks=8,
                index_config=INDEX,
            )
            run(scheduler, layout.mount)
            inodes = {}  # in-core handles died with the old incarnation
        _check_invariants(layout)
