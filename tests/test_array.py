"""The multi-volume storage array: placement, sharded cache, routed layout.

Covers the three layers added for the Sun 4/280 reproduction — placement
policies, the ShardedCache façade and the RoutedLayout — plus the two
contracts the refactor must honour: a one-volume array is byte-identical to
the legacy single-volume assembly, and a multi-volume array actually
spreads traffic over its volumes.
"""

from dataclasses import replace

import pytest

from repro.config import (
    ArrayConfig,
    CacheConfig,
    FlushConfig,
    small_test_config,
    sun4_280_config,
)
from repro.core.cache import BlockCache
from repro.core.flush import ShardedFlushPolicy
from repro.core.inode import FileKind, ROOT_INODE_NUMBER
from repro.core.scheduler import Delay
from repro.core.storage.array import (
    DirectoryAffinityPlacement,
    HashPlacement,
    RoutedLayout,
    ShardedCache,
    StripedPlacement,
    VolumeSet,
    make_placement_policy,
)
from repro.core.storage.lfs import LogStructuredLayout
from repro.core.storage.volume import LocalVolume
from repro.errors import ConfigurationError
from repro.patsy.simulator import PatsySimulator
from repro.patsy.workload import WorkloadProfile, generate_workload
from repro.pfs.diskfile import MemoryBackedDiskDriver
from repro.units import KB, MB
from tests.conftest import run


# --------------------------------------------------------------------------- config


def test_array_config_validation():
    with pytest.raises(ConfigurationError):
        ArrayConfig(volumes=0)
    with pytest.raises(ConfigurationError):
        ArrayConfig(volumes=4, buses=1, disks_per_bus=2)  # 2 disks, 4 volumes
    with pytest.raises(ConfigurationError):
        ArrayConfig(placement="raid-z")
    with pytest.raises(ConfigurationError):
        ArrayConfig(shard="per-core")
    with pytest.raises(ConfigurationError):
        ArrayConfig(governor_low_water=0.9, governor_high_water=0.5)
    with pytest.raises(ConfigurationError):
        ArrayConfig(buses=4, disks_per_bus=1, num_disks=2)  # more buses than disks


def test_array_config_disk_partition():
    config = ArrayConfig(volumes=5, buses=3, disks_per_bus=4, num_disks=10)
    assert config.total_disks == 10
    ranges = [config.disks_of_volume(v) for v in range(5)]
    assert [len(r) for r in ranges] == [2, 2, 2, 2, 2]
    covered = [i for r in ranges for i in r]
    assert covered == list(range(10))
    # Uneven split: the first volumes absorb the spare disks.
    uneven = ArrayConfig(volumes=3, buses=1, disks_per_bus=10, num_disks=10)
    assert [len(uneven.disks_of_volume(v)) for v in range(3)] == [4, 3, 3]
    # Buses are assigned round-robin by global disk index.
    assert [config.bus_for_disk(i) for i in range(6)] == [0, 1, 2, 0, 1, 2]


def test_sun4_280_preset_matches_the_paper():
    config = sun4_280_config(scale=0.01)
    assert config.array is not None
    assert config.array.total_disks == 10
    assert config.array.buses == 3
    assert config.host.disk_model == "hp97560"
    assert config.layout.kind == "lfs"


# --------------------------------------------------------------------------- placement


def test_hash_placement_is_deterministic_and_spreads():
    policy = HashPlacement(5)
    homes = {policy.home_for_new_file(2, f"file{i}", i) for i in range(64)}
    assert homes == set(range(5))  # 64 names cover all five volumes
    assert policy.home_for_new_file(2, "a", 0) == policy.home_for_new_file(2, "a", 99)
    # Block placement follows the home encoded in the inode number.
    assert policy.volume_for_block(ROOT_INODE_NUMBER + 3, 1000) == 3


def test_striped_placement_rotates_blocks():
    policy = StripedPlacement(4, stripe_unit=2)
    file_id = ROOT_INODE_NUMBER + 1  # home volume 1
    volumes = [policy.volume_for_block(file_id, block) for block in range(8)]
    assert volumes == [1, 1, 2, 2, 3, 3, 0, 0]
    assert policy.home_for_new_file(None, None, 7) == 3


def test_directory_affinity_groups_files_and_spreads_directories():
    policy = DirectoryAffinityPlacement(4)
    directory_id = ROOT_INODE_NUMBER + 2  # a directory homed on volume 2
    for name in ("a", "b", "c"):
        assert policy.home_for_new_file(directory_id, name, 10) == 2
    homes = {
        policy.home_for_new_file(ROOT_INODE_NUMBER, f"dir{i}", i, kind=FileKind.DIRECTORY)
        for i in range(64)
    }
    assert len(homes) > 1  # directories fan out over the volumes


def test_make_placement_policy_factory():
    assert isinstance(make_placement_policy("hash", 3), HashPlacement)
    assert isinstance(make_placement_policy("stripe", 3, stripe_unit=8), StripedPlacement)
    assert isinstance(make_placement_policy("directory", 3), DirectoryAffinityPlacement)
    with pytest.raises(ConfigurationError):
        make_placement_policy("nearest", 3)


# --------------------------------------------------------------------------- volume set


def test_volume_set_aggregates(scheduler):
    volumes = [
        LocalVolume([MemoryBackedDiskDriver(scheduler, size_bytes=2 * MB)], block_size=4 * KB)
        for _ in range(3)
    ]
    vset = VolumeSet(volumes)
    assert len(vset) == 3
    assert vset.total_blocks == sum(v.total_blocks for v in volumes)
    assert vset.num_disks == 3
    assert vset.block_size == 4 * KB
    run(scheduler, vset.flush)  # all queues idle: returns immediately


# --------------------------------------------------------------------------- sharded cache


def make_sharded(scheduler, shards=2, blocks_per_shard=8):
    config = CacheConfig(size_bytes=blocks_per_shard * 4 * KB)
    caches = [BlockCache(scheduler, config, with_data=False) for _ in range(shards)]
    cache = ShardedCache(caches, router=lambda file_id, block_no: file_id % shards)
    written = []

    def writeback(file_id, block_nos):
        written.append((file_id, tuple(block_nos)))
        yield Delay(0.001)

    cache.writeback = writeback
    return cache, caches, written


def test_sharded_cache_routes_by_file(scheduler):
    cache, shards, _ = make_sharded(scheduler, shards=2)

    def body():
        block_even = yield from cache.allocate(4, 0)
        block_odd = yield from cache.allocate(5, 0)
        yield from cache.mark_dirty(block_odd)
        return block_even, block_odd

    run(scheduler, body)
    assert shards[0].contains(4, 0) and not shards[1].contains(4, 0)
    assert shards[1].contains(5, 0) and not shards[0].contains(5, 0)
    assert cache.contains(4, 0) and cache.contains(5, 0)
    assert cache.dirty_count == 1 and shards[1].dirty_count == 1
    assert cache.cached_count == 2
    assert cache.num_blocks == 16 and cache.free_count == 14


def test_sharded_cache_aggregate_statistics(scheduler):
    cache, shards, _ = make_sharded(scheduler, shards=2)

    def body():
        yield from cache.allocate(4, 0)
        yield from cache.allocate(5, 0)

    run(scheduler, body)
    cache.lookup(4, 0)  # hit on shard 0
    cache.lookup(5, 0)  # hit on shard 1
    cache.lookup(6, 9)  # miss on shard 0
    snapshot = cache.stats.snapshot()
    assert snapshot["lookups"] == 3
    assert snapshot["hits"] == 2
    assert snapshot["hit_rate"] == pytest.approx(2 / 3)
    assert cache.stats.allocations == 2
    assert cache.policy.name == shards[0].policy.name


def test_sharded_cache_whole_file_operations_fan_out(scheduler):
    cache, shards, written = make_sharded(scheduler, shards=2)

    def body():
        # file 4 routes to shard 0, file 5 to shard 1; dirty both.
        for file_id in (4, 5):
            for block_no in range(2):
                block = yield from cache.allocate(file_id, block_no)
                yield from cache.mark_dirty(block)
        flushed = yield from cache.flush_all()
        return flushed

    flushed = run(scheduler, body)
    assert flushed == 4
    assert cache.dirty_count == 0
    assert {file_id for file_id, _ in written} == {4, 5}


def test_sharded_cache_invalidate_file_spans_shards(scheduler):
    # A block-striped router: blocks of one file alternate between shards.
    config = CacheConfig(size_bytes=8 * 4 * KB)
    shards = [BlockCache(scheduler, config, with_data=False) for _ in range(2)]
    cache = ShardedCache(shards, router=lambda file_id, block_no: block_no % 2)

    def body():
        for block_no in range(4):
            block = yield from cache.allocate(7, block_no)
            if block_no < 2:
                yield from cache.mark_dirty(block)

    run(scheduler, body)
    assert shards[0].cached_count == 2 and shards[1].cached_count == 2
    clean, dirty = cache.invalidate_file(7)
    assert (clean, dirty) == (2, 2)
    assert cache.cached_count == 0


def test_sharded_cache_single_shard_is_a_passthrough(scheduler):
    cache, shards, _ = make_sharded(scheduler, shards=1)
    assert cache.stats is shards[0].stats
    assert cache.policy is shards[0].policy


# --------------------------------------------------------------------------- routed layout


def make_routed(scheduler, volumes=2, placement=None, disk_mb=2, segment_blocks=8):
    vols = [
        LocalVolume([MemoryBackedDiskDriver(scheduler, size_bytes=disk_mb * MB)], block_size=4 * KB)
        for _ in range(volumes)
    ]
    subs = [
        LogStructuredLayout(
            scheduler, vol, block_size=4 * KB, segment_blocks=segment_blocks, simulated=False
        )
        for vol in vols
    ]
    policy = placement if placement is not None else HashPlacement(volumes)
    layout = RoutedLayout(
        scheduler, VolumeSet(vols), subs, policy, block_size=4 * KB
    )
    run(scheduler, layout.format)
    run(scheduler, layout.mount)
    return layout


def data_block(scheduler, payload=b"x"):
    from repro.core.blocks import CacheBlock

    block = CacheBlock(0, 4 * KB, with_data=True)
    block.data[: len(payload)] = payload
    return block


def test_routed_layout_encodes_home_in_inode_number(scheduler):
    layout = make_routed(scheduler, volumes=3)
    root = layout.allocate_inode(FileKind.DIRECTORY)
    assert root.number == ROOT_INODE_NUMBER
    assert layout.home_of(root.number) == 0
    inodes = [
        layout.allocate_inode(FileKind.REGULAR, parent_id=root.number, name=f"f{i}")
        for i in range(12)
    ]
    numbers = {inode.number for inode in inodes}
    assert len(numbers) == 12  # globally unique despite three sub-layouts
    for inode in inodes:
        home = layout.home_of(inode.number)
        assert inode.number % 3 == (ROOT_INODE_NUMBER + home) % 3
        assert inode.number in layout.sublayouts[home].known_inode_numbers()
    assert sorted(numbers | {root.number}) == layout.known_inode_numbers()


def test_routed_layout_write_read_roundtrip(scheduler):
    layout = make_routed(scheduler, volumes=2)
    layout.allocate_inode(FileKind.DIRECTORY)  # the root
    inode = layout.allocate_inode(FileKind.REGULAR, parent_id=2, name="data")
    run(
        scheduler,
        layout.write_file_blocks,
        inode,
        [(i, data_block(scheduler, b"%d" % i)) for i in range(4)],
    )
    run(scheduler, layout.write_inode, inode)
    again = run(scheduler, layout.read_inode, inode.number)
    assert again.number == inode.number
    block = data_block(scheduler, b"")
    assert run(scheduler, layout.read_file_block, inode, 2, block)
    assert bytes(block.data[:1]) == b"2"


def test_routed_layout_striped_release_frees_every_volume(scheduler):
    placement = StripedPlacement(2, stripe_unit=1)
    layout = make_routed(scheduler, volumes=2, placement=placement)
    layout.allocate_inode(FileKind.DIRECTORY)  # the root
    inode = layout.allocate_inode(FileKind.REGULAR, parent_id=2, name="striped")
    run(
        scheduler,
        layout.write_file_blocks,
        inode,
        [(i, data_block(scheduler)) for i in range(6)],
    )
    # Blocks alternate volumes: both sub-layouts hold live data.
    live_before = [
        sum(sub.segment_usage.values()) for sub in layout.sublayouts
    ]
    assert all(live > 0 for live in live_before)
    run(scheduler, layout.release_blocks, inode, 0)
    assert inode.block_map == {}
    live_after = [sum(sub.segment_usage.values()) for sub in layout.sublayouts]
    # Releasing through the router freed the data on *both* volumes.
    assert all(after < before for after, before in zip(live_after, live_before))


def test_routed_layout_free_inode_routes_home(scheduler):
    layout = make_routed(scheduler, volumes=2)
    layout.allocate_inode(FileKind.DIRECTORY)
    inode = layout.allocate_inode(FileKind.REGULAR, parent_id=2, name="doomed")
    run(scheduler, layout.write_file_blocks, inode, [(0, data_block(scheduler))])
    run(scheduler, layout.write_inode, inode)
    home = layout.home_of(inode.number)
    assert inode.number in layout.sublayouts[home].inode_map
    run(scheduler, layout.free_inode, inode)
    assert inode.number not in layout.sublayouts[home].inode_map


def test_routed_layout_free_blocks_sums_volumes(scheduler):
    layout = make_routed(scheduler, volumes=2)
    assert layout.free_blocks == sum(sub.free_blocks for sub in layout.sublayouts)
    assert 0.0 < layout.free_segment_fraction <= 1.0


def test_ffs_sublayout_keeps_full_slot_capacity_under_strided_numbering(scheduler):
    """An FFS member of a V-volume array only ever sees numbers from its own
    progression (ROOT + v, ROOT + v + V, ...); the stride maps them to dense
    table slots so the member keeps its full inode capacity."""
    from repro.core.storage.ffs import FfsLikeLayout

    volume = LocalVolume(
        [MemoryBackedDiskDriver(scheduler, size_bytes=2 * MB)], block_size=4 * KB
    )
    layout = FfsLikeLayout(
        scheduler,
        volume,
        block_size=4 * KB,
        max_inodes=16,
        simulated=True,
        inode_base=1,
        inode_stride=4,
    )
    run(scheduler, layout.mount)
    numbers = [layout.allocate_inode(FileKind.REGULAR).number for _ in range(16)]
    # All 16 slots are usable, and every number stays in the progression.
    assert numbers == [ROOT_INODE_NUMBER + 1 + 4 * slot for slot in range(16)]
    with pytest.raises(Exception):
        layout.allocate_inode(FileKind.REGULAR)  # table genuinely full
    # A number from another volume's progression is rejected, not aliased.
    from repro.errors import StorageError

    with pytest.raises(StorageError):
        layout._slot_address(ROOT_INODE_NUMBER + 2)


def test_routed_layout_rejects_mismatched_ffs_progression(scheduler):
    from repro.core.storage.ffs import FfsLikeLayout

    volumes = [
        LocalVolume([MemoryBackedDiskDriver(scheduler, size_bytes=2 * MB)], block_size=4 * KB)
        for _ in range(2)
    ]
    subs = [
        FfsLikeLayout(scheduler, vol, block_size=4 * KB, simulated=True)  # stride 1
        for vol in volumes
    ]
    with pytest.raises(ConfigurationError):
        RoutedLayout(
            scheduler, VolumeSet(volumes), subs, HashPlacement(2), block_size=4 * KB
        )


def test_ffs_array_survives_many_files():
    base = small_test_config()
    config = replace(
        base,
        layout=replace(base.layout, kind="ffs"),
        array=ArrayConfig(volumes=2, buses=1, disks_per_bus=2),
    )
    simulator = PatsySimulator(config)
    for v, sub in enumerate(simulator.layout.sublayouts):
        assert (sub.inode_base, sub.inode_stride) == (v, 2)
    result = simulator.replay(array_trace(seed=9, duration=150.0), trace_name="ffs-array")
    assert result.errors == 0
    # Far more files than one volume's dense slot share of a naive layout.
    assert len(simulator.layout.known_inode_numbers()) > 40


# --------------------------------------------------------------------------- sharded flush


def test_sharded_flush_policy_splits_nvram_budget(scheduler):
    config = CacheConfig(size_bytes=8 * 4 * KB)
    shards = [BlockCache(scheduler, config, with_data=False) for _ in range(2)]
    cache = ShardedCache(shards, router=lambda f, b: f % 2)
    policy = ShardedFlushPolicy(FlushConfig(policy="nvram", nvram_bytes=8 * 4 * KB))
    policy.attach(cache, scheduler)
    assert len(policy.children) == 2
    # The 8-block NVRAM is split 4 + 4 over the shards.
    assert shards[0].dirty_limit_bytes == 4 * 4 * KB
    assert shards[1].dirty_limit_bytes == 4 * 4 * KB


def test_sharded_flush_governor_drains_aggregate_dirty(scheduler):
    config = CacheConfig(size_bytes=8 * 4 * KB)
    shards = [BlockCache(scheduler, config, with_data=False) for _ in range(2)]
    cache = ShardedCache(shards, router=lambda f, b: f % 2)
    written = []

    def writeback(file_id, block_nos):
        written.append((file_id, tuple(block_nos)))
        yield Delay(0.001)

    cache.writeback = writeback
    # A periodic policy that never fires on its own: only the governor acts.
    policy = ShardedFlushPolicy(
        FlushConfig(policy="periodic", update_interval=1e6, scan_interval=1e5),
        high_water=0.5,
        low_water=0.25,
        check_interval=0.5,
    )
    policy.attach(cache, scheduler)
    assert policy.governor_thread is not None

    def dirty_everything():
        for file_id in (4, 5):
            for block_no in range(6):
                block = yield from cache.allocate(file_id, block_no)
                yield from cache.mark_dirty(block)

    run(scheduler, dirty_everything)
    assert cache.dirty_bytes / (cache.num_blocks * cache.block_size) > 0.5
    scheduler.run(until=5.0)
    assert policy.governor_wakeups >= 1
    assert policy.governor_flushes > 0
    assert cache.dirty_bytes / (cache.num_blocks * cache.block_size) <= 0.5
    stats = policy.stats()
    assert stats["governor_flushes"] == policy.governor_flushes
    assert len(policy.shard_stats()) == 2


def test_sharded_flush_governor_never_runs_for_ups(scheduler):
    config = CacheConfig(size_bytes=8 * 4 * KB)
    shards = [BlockCache(scheduler, config, with_data=False) for _ in range(2)]
    cache = ShardedCache(shards, router=lambda f, b: f % 2)
    policy = ShardedFlushPolicy(FlushConfig(policy="ups"), high_water=0.5, low_water=0.25)
    policy.attach(cache, scheduler)
    assert policy.governor_thread is None  # write saving: no write-ahead


def test_sharded_flush_single_shard_spawns_no_governor(scheduler):
    config = CacheConfig(size_bytes=8 * 4 * KB)
    shards = [BlockCache(scheduler, config, with_data=False)]
    cache = ShardedCache(shards, router=lambda f, b: 0)
    policy = ShardedFlushPolicy(FlushConfig(policy="periodic"))
    policy.attach(cache, scheduler)
    assert policy.governor_thread is None
    assert len(policy.children) == 1


# --------------------------------------------------------------------------- end to end


def array_trace(seed=3, duration=120.0):
    profile = WorkloadProfile(
        name="array-e2e",
        duration=duration,
        num_clients=4,
        initial_files=30,
        directory_count=10,
    )
    return generate_workload(profile, seed=seed)


def test_one_volume_array_reproduces_legacy_summary_byte_identically():
    """The acceptance contract: ArrayConfig(volumes=1) must push every
    operation through the façade/router layers and still produce the exact
    measurements of the legacy single-volume assembly."""
    trace = array_trace()
    legacy = PatsySimulator(small_test_config()).replay(trace, trace_name="t")
    config = replace(
        small_test_config(),
        array=ArrayConfig(volumes=1, buses=1, disks_per_bus=1),
    )
    arrayed = PatsySimulator(config).replay(trace, trace_name="t")
    assert repr(legacy.summary()) == repr(arrayed.summary())
    # The array run went through the refactored stack, not the legacy one.
    assert arrayed.volume_stats and not legacy.volume_stats


@pytest.mark.parametrize("placement", ["hash", "stripe", "directory"])
def test_multi_volume_array_replays_and_spreads(placement):
    base = small_test_config()
    config = replace(
        base,
        cache=replace(base.cache, size_bytes=192 * 4 * KB),
        array=ArrayConfig(
            volumes=3,
            buses=2,
            disks_per_bus=2,
            placement=placement,
            stripe_unit_blocks=4,
        ),
    )
    result = PatsySimulator(config).replay(array_trace(seed=5), trace_name=placement)
    assert result.errors == 0
    per_volume = result.volume_stats["per_volume"]
    assert set(per_volume) == {"vol0", "vol1", "vol2"}
    writes = [per_volume[f"vol{v}"]["layout"]["blocks_written"] for v in range(3)]
    busy = sum(1 for w in writes if w > 0)
    assert busy >= 2, f"placement {placement} left the array lopsided: {writes}"
    rollup = result.volume_stats["rollup"]
    assert rollup["placement"] == placement
    assert rollup["disk_operations"] > 0


def test_unified_shard_keeps_one_cache_over_many_volumes():
    base = small_test_config()
    config = replace(
        base,
        array=ArrayConfig(volumes=2, buses=1, disks_per_bus=2, shard="unified"),
    )
    simulator = PatsySimulator(config)
    assert len(simulator.cache.shards) == 1
    result = simulator.replay(array_trace(seed=7), trace_name="unified")
    assert result.errors == 0
    per_volume = result.volume_stats["per_volume"]
    assert all("cache" not in entry for entry in per_volume.values())
    # One flush daemon serves the whole unified cache: its counters belong
    # to the array rollup, never misattributed to vol0.
    assert all("flush" not in entry for entry in per_volume.values())
    rollup = result.volume_stats["rollup"]
    assert "flush" in rollup and "layout" in rollup


def test_sun4_280_preset_runs_with_per_volume_stats():
    config = sun4_280_config(scale=0.002, seed=1)
    result = PatsySimulator(config).replay(array_trace(seed=1), trace_name="sun4")
    assert result.errors == 0
    assert len(result.volume_stats["per_volume"]) == 5
    from repro.analysis.report import format_volume_table

    table = format_volume_table(result.volume_stats)
    assert "vol0" in table and "vol4" in table
    assert "placement=hash" in table
