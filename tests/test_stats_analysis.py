"""Statistics plug-ins, latency recording and the analysis helpers."""

import pytest

from repro.analysis.cdf import (
    cumulative_distribution,
    fraction_at_or_below,
    percentile,
    summarize_latencies,
)
from repro.analysis.report import (
    ascii_cdf_plot,
    format_latency_cdf_table,
    format_mean_latency_table,
)
from repro.errors import InvalidArgument
from repro.patsy.stats import Histogram, LatencyRecorder


def test_histogram_linear_buckets():
    histogram = Histogram(low=0.0, high=10.0, buckets=10)
    histogram.add_all([0.5, 1.5, 9.5, 25.0])
    assert histogram.total == 4
    assert histogram.counts[-1] == 1  # the overflow bucket
    assert histogram.mean == pytest.approx((0.5 + 1.5 + 9.5 + 25.0) / 4)
    assert histogram.min == 0.5 and histogram.max == 25.0


def test_histogram_log_buckets():
    histogram = Histogram(low=0.001, high=1.0, buckets=3, log_scale=True)
    assert len(histogram.bounds) == 3
    assert histogram.bounds[0] < histogram.bounds[1] < histogram.bounds[2]
    with pytest.raises(InvalidArgument):
        Histogram(low=0.0, high=1.0, log_scale=True)


def test_histogram_ascii_rendering():
    histogram = Histogram(low=0, high=4, buckets=4)
    histogram.add_all([1, 1, 3])
    text = histogram.to_ascii(label="queue length")
    assert "queue length" in text and "#" in text


def test_latency_recorder_summary():
    recorder = LatencyRecorder(report_interval=10.0)
    for i in range(100):
        recorder.record(start_time=i * 0.5, op="read" if i % 2 else "write", latency=0.001 * (i + 1))
    recorder.finish()
    assert recorder.count == 100
    assert recorder.mean_latency() == pytest.approx(0.0505)
    assert recorder.percentile(0.5) <= recorder.percentile(0.95)
    assert recorder.mean_latency("read") != recorder.mean_latency("write")
    assert set(recorder.per_operation_means()) == {"read", "write"}
    assert len(recorder.interval_reports) == 5
    assert recorder.summary()["operations"] == 100
    assert "read" in recorder.describe()


def test_latency_recorder_cdf_monotone():
    recorder = LatencyRecorder()
    for value in (0.5, 0.1, 0.9, 0.3):
        recorder.record(0.0, "read", value)
    cdf = recorder.cdf()
    latencies = [point[0] for point in cdf]
    fractions = [point[1] for point in cdf]
    assert latencies == sorted(latencies)
    assert fractions[-1] == pytest.approx(1.0)
    assert recorder.fraction_completed_within(0.4) == pytest.approx(0.5)


def test_cumulative_distribution_helpers():
    values = [1.0, 2.0, 3.0, 4.0]
    cdf = cumulative_distribution(values, points=10)
    assert cdf[0] == (1.0, 0.25)
    assert cdf[-1] == (4.0, 1.0)
    assert fraction_at_or_below(values, 2.5) == 0.5
    assert fraction_at_or_below([], 1.0) == 0.0
    assert percentile(values, 0.5) == 2.0
    with pytest.raises(InvalidArgument):
        percentile(values, 1.5)
    with pytest.raises(InvalidArgument):
        cumulative_distribution(values, points=1)


def test_cumulative_distribution_downsamples():
    values = list(range(1000))
    cdf = cumulative_distribution(values, points=50)
    assert len(cdf) <= 51
    assert cdf[-1][1] == pytest.approx(1.0)


def test_summarize_latencies():
    summary = summarize_latencies([0.001, 0.002, 0.100])
    assert summary["count"] == 3
    assert summary["max"] == 0.100
    assert summarize_latencies([])["mean"] == 0.0


def test_format_mean_latency_table():
    table = {"1a": {"ups": 0.001, "write-delay": 0.002}, "1b": {"ups": 0.003, "write-delay": 0.004}}
    text = format_mean_latency_table(table)
    assert "1a" in text and "write-delay" in text and "ms" in text


def test_format_latency_cdf_table():
    text = format_latency_cdf_table({"ups": [0.001, 0.010], "write-delay": [0.050, 0.100]})
    assert "ups" in text and "%" in text


def test_ascii_cdf_plot():
    plot = ascii_cdf_plot({"ups": [0.001, 0.002, 0.010], "write-delay": [0.02, 0.05]}, width=30, height=8)
    assert "ups" in plot and "|" in plot
    assert ascii_cdf_plot({}) == "(no data)"
