"""Streaming quantile estimation: the P² marker estimator, the log-bucket
latency shards and the recorder's constant-memory behaviour past its exact
window."""

import math
import random

import pytest

from repro.analysis.cdf import downsample_cdf, percentile_from_cdf
from repro.errors import InvalidArgument
from repro.patsy.stats import Histogram, LatencyRecorder, LatencyShard, P2Quantile


def exact_percentile(values, fraction):
    ordered = sorted(values)
    index = min(int(math.ceil(fraction * len(ordered))) - 1, len(ordered) - 1)
    return ordered[max(index, 0)]


DISTRIBUTIONS = {
    "uniform": lambda rng: rng.uniform(0.001, 0.5),
    "exponential": lambda rng: rng.expovariate(100.0),
    "lognormal": lambda rng: math.exp(rng.gauss(-5.0, 1.0)),
}


@pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
@pytest.mark.parametrize("fraction", [0.5, 0.95, 0.99])
def test_p2_estimator_within_two_percent(name, fraction):
    rng = random.Random(11)
    values = [DISTRIBUTIONS[name](rng) for _ in range(100_000)]
    estimator = P2Quantile(fraction)
    for value in values:
        estimator.add(value)
    exact = exact_percentile(values, fraction)
    assert estimator.value == pytest.approx(exact, rel=0.02)


@pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
@pytest.mark.parametrize("fraction", [0.5, 0.95, 0.99])
def test_shard_quantile_within_two_percent(name, fraction):
    rng = random.Random(13)
    values = [DISTRIBUTIONS[name](rng) for _ in range(30_000)]
    shard = LatencyShard()
    recorder = LatencyRecorder(exact_window=64)  # force the streaming path
    for i, value in enumerate(values):
        recorder.record(i * 0.001, "read", value)
    assert not recorder.window_is_exact
    exact = exact_percentile(values, fraction)
    assert recorder.percentile(fraction) == pytest.approx(exact, rel=0.02)


def test_p2_small_sample_is_exact():
    estimator = P2Quantile(0.5)
    for value in (0.5, 0.1, 0.9):
        estimator.add(value)
    assert estimator.value == 0.5
    assert P2Quantile(0.5).value == 0.0


def test_p2_rejects_bad_fraction():
    with pytest.raises(InvalidArgument):
        P2Quantile(0.0)
    with pytest.raises(InvalidArgument):
        P2Quantile(1.5)


def test_recorder_p2_tracking_answers_tracked_fractions():
    rng = random.Random(3)
    values = [rng.expovariate(50.0) for _ in range(20_000)]
    recorder = LatencyRecorder(exact_window=64, p2_quantiles=(0.5, 0.95))
    for i, value in enumerate(values):
        recorder.record(i * 0.001, "read", value)
    assert recorder.percentile(0.5) == pytest.approx(exact_percentile(values, 0.5), rel=0.02)
    assert recorder.percentile(0.95) == pytest.approx(
        exact_percentile(values, 0.95), rel=0.02
    )


def test_recorder_memory_is_constant_past_the_window():
    recorder = LatencyRecorder(exact_window=256)
    for i in range(10_000):
        recorder.record(i * 0.01, "read", 0.001 * (1 + i % 7), client=i % 4)
    assert recorder.count == 10_000
    assert recorder.retained_samples == 256
    assert not recorder.window_is_exact
    # Shards exist per op and per client, independent of the sample count.
    assert set(recorder.op_shards) == {"read"}
    assert recorder.client_ids() == [0, 1, 2, 3]


def test_fraction_below_bucket_range_is_non_negative():
    recorder = LatencyRecorder(exact_window=0)  # force the streaming path
    for i in range(100):
        recorder.record(i * 0.001, "read", 1.01e-9)
    fraction = recorder.fraction_completed_within(1e-10)
    assert 0.0 <= fraction <= 1.0


def test_recorder_zero_latencies():
    recorder = LatencyRecorder(exact_window=4)
    for i in range(100):
        recorder.record(i * 0.001, "stat", 0.0)
    recorder.record(1.0, "read", 0.5)
    assert recorder.percentile(0.5) == 0.0
    assert recorder.percentile(1.0) == pytest.approx(0.5, rel=0.02)
    assert recorder.fraction_completed_within(0.0) == pytest.approx(100 / 101, rel=1e-6)


def test_recorder_streaming_cdf_monotone_and_complete():
    rng = random.Random(5)
    recorder = LatencyRecorder(exact_window=32)
    for i in range(5_000):
        recorder.record(i * 0.001, "read", rng.expovariate(100.0))
    cdf = recorder.cdf(points=100)
    assert len(cdf) <= 100
    values = [point[0] for point in cdf]
    fractions = [point[1] for point in cdf]
    assert values == sorted(values)
    assert fractions == sorted(fractions)
    assert fractions[-1] == pytest.approx(1.0)
    # helpers consume the streaming CDF directly; an undownsampled CDF keeps
    # the full bucket resolution (one bucket = 2% in value).
    fine = recorder.cdf(points=4096)
    assert percentile_from_cdf(fine, 0.5) == pytest.approx(recorder.percentile(0.5), rel=0.05)
    assert len(downsample_cdf(cdf, 10)) <= 10


def test_recorder_per_client_summary_consistent_across_paths():
    rng = random.Random(9)
    exact = LatencyRecorder(exact_window=100_000)
    streaming = LatencyRecorder(exact_window=64)
    for i in range(8_000):
        latency = rng.expovariate(100.0)
        client = i % 3
        exact.record(i * 0.001, "read", latency, client)
        streaming.record(i * 0.001, "read", latency, client)
    exact_summary = exact.per_client_summary()
    stream_summary = streaming.per_client_summary()
    assert set(exact_summary) == set(stream_summary) == {0, 1, 2}
    for client in exact_summary:
        assert stream_summary[client]["operations"] == exact_summary[client]["operations"]
        assert stream_summary[client]["mean_latency"] == pytest.approx(
            exact_summary[client]["mean_latency"]
        )
        assert stream_summary[client]["p95_latency"] == pytest.approx(
            exact_summary[client]["p95_latency"], rel=0.02
        )


def test_recorder_latencies_reconstruction_preserves_distribution():
    rng = random.Random(21)
    values = [rng.uniform(0.001, 0.1) for _ in range(4_000)]
    recorder = LatencyRecorder(exact_window=16)
    for i, value in enumerate(values):
        recorder.record(i * 0.001, "read", value)
    reconstructed = recorder.latencies()
    assert len(reconstructed) == len(values)
    assert sum(reconstructed) == pytest.approx(sum(values), rel=0.02)
    assert exact_percentile(reconstructed, 0.9) == pytest.approx(
        exact_percentile(values, 0.9), rel=0.02
    )


def test_histogram_rejects_unsorted_bounds_without_copy():
    with pytest.raises(InvalidArgument):
        Histogram(bucket_bounds=[3.0, 1.0, 2.0])
    with pytest.raises(InvalidArgument):
        Histogram(bucket_bounds=[])


def test_histogram_arithmetic_bucket_lookup_matches_bisect():
    from bisect import bisect_right

    linear = Histogram(low=0.0, high=10.0, buckets=10)
    logarithmic = Histogram(low=0.001, high=10.0, buckets=40, log_scale=True)
    rng = random.Random(17)
    probes = [rng.uniform(-1.0, 12.0) for _ in range(500)]
    probes += list(linear.bounds) + list(logarithmic.bounds) + [0.0, 10.0, 1e-9]
    for value in probes:
        assert linear._bucket_index(value) == bisect_right(linear.bounds, value)
        if value > 0:
            assert logarithmic._bucket_index(value) == bisect_right(
                logarithmic.bounds, value
            )
