"""fsync durability scope: ancestor dirent chains and rename durability.

A file is only reachable through its chain of directory entries, so fsync
must flush more than the file's own blocks: the *full* ancestor chain up to
the root, and — after a rename — both the source and the destination
directory.  These tests pin that scope on a real (byte-moving) memory file
system so dirty state is observable block by block.
"""

import pytest

from repro.core.client import AbstractClientInterface
from tests.conftest import run


@pytest.fixture
def client(memory_fs):
    return AbstractClientInterface(memory_fs, auto_materialize=False)


def dirty_file_ids(fs):
    return {block.block_id.file_id for block in fs.cache._dirty.values()}


def test_fsync_flushes_full_ancestor_chain(scheduler, client, memory_fs):
    def body():
        yield from client.mkdir("/a")
        yield from client.mkdir("/a/b")
        yield from client.mkdir("/a/b/c")
        handle = yield from client.create("/a/b/c/leaf.txt")
        yield from client.write(handle, 0, b"x" * 4096)
        ids = {}
        for path in ("/a", "/a/b", "/a/b/c"):
            directory = yield from client.lookup(path)
            ids[path] = directory.file_id
        yield from client.fsync(handle)
        yield from client.close(handle)
        return ids

    ids = run(scheduler, body)
    # Every ancestor's dirent blocks reached disk, not just the immediate
    # parent's, and their inode metadata is no longer pending.
    dirty = dirty_file_ids(memory_fs)
    for path, file_id in ids.items():
        assert file_id not in dirty, f"{path} still has dirty dirent blocks"
        assert file_id not in memory_fs._dirty_inodes, f"{path} inode not synced"
    # The root's dirent for /a is durable too.
    assert memory_fs.root_directory().file_id not in dirty


def test_fsync_without_rename_leaves_unrelated_dirs_dirty(scheduler, client, memory_fs):
    """The chain walk flushes ancestors, not the whole namespace."""

    def body():
        yield from client.mkdir("/hot")
        yield from client.mkdir("/cold")
        bystander = yield from client.create("/cold/bystander")
        yield from client.write(bystander, 0, b"b" * 4096)
        handle = yield from client.create("/hot/leaf")
        yield from client.write(handle, 0, b"h" * 4096)
        yield from client.fsync(handle)
        cold = yield from client.lookup("/cold")
        leaf = yield from client.lookup("/hot/leaf")
        yield from client.close(handle)
        yield from client.close(bystander)
        return cold.file_id, leaf.file_id

    cold_id, leaf_id = run(scheduler, body)
    dirty = dirty_file_ids(memory_fs)
    assert leaf_id not in dirty
    # The unrelated file's data was not dragged to disk by the fsync.
    assert dirty, "expected the bystander's blocks to still be dirty"
    assert cold_id not in {leaf_id} and leaf_id not in dirty


def test_fsync_after_rename_flushes_both_directories(scheduler, client, memory_fs):
    def body():
        yield from client.mkdir("/src")
        yield from client.mkdir("/dst")
        handle = yield from client.create("/src/file")
        yield from client.write(handle, 0, b"r" * 4096)
        yield from client.fsync(handle)  # everything durable so far
        yield from client.rename("/src/file", "/dst/renamed")
        src = yield from client.lookup("/src")
        dst = yield from client.lookup("/dst")
        file = yield from client.lookup("/dst/renamed")
        # The rename dirtied both directories and recorded them on the file.
        assert {src.file_id, dst.file_id} <= file.pending_sync_parents
        assert file.parent_id == dst.file_id
        yield from client.fsync(handle)
        assert not file.pending_sync_parents  # consumed by the fsync
        yield from client.close(handle)
        return src.file_id, dst.file_id

    src_id, dst_id = run(scheduler, body)
    dirty = dirty_file_ids(memory_fs)
    assert src_id not in dirty, "rename source directory not durable after fsync"
    assert dst_id not in dirty, "rename destination directory not durable after fsync"
    assert src_id not in memory_fs._dirty_inodes
    assert dst_id not in memory_fs._dirty_inodes


def test_rename_survives_remount_after_fsync(pfs):
    """End to end on PFS: fsync after rename makes the new name (and the
    removal of the old one) durable across an unmount/remount."""
    pfs.makedirs("/one")
    pfs.makedirs("/two")
    pfs.write_file("/one/report.txt", b"final" * 100)
    pfs.rename("/one/report.txt", "/two/report.txt")
    handle = pfs.open("/two/report.txt")
    pfs.fsync(handle)
    pfs.close(handle)
    pfs.unmount()
    pfs.mount()
    assert pfs.read_file("/two/report.txt") == b"final" * 100
    assert "report.txt" not in pfs.listdir("/one")
