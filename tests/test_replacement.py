"""Cache replacement policies (LRU, random, LFU, SLRU, LRU-K)."""

import random

import pytest

from repro.core.blocks import CacheBlock
from repro.core.replacement import (
    LfuReplacement,
    LruKReplacement,
    LruReplacement,
    RandomReplacement,
    SlruReplacement,
    make_replacement_policy,
)
from repro.errors import ConfigurationError


def make_blocks(access_patterns):
    """Build blocks with given (times, ...) access patterns."""
    blocks = []
    for slot, times in enumerate(access_patterns):
        block = CacheBlock(slot, 4096, False)
        for t in times:
            block.record_access(t)
        blocks.append(block)
    return blocks


RNG = random.Random(1)


def test_lru_picks_first_candidate():
    blocks = make_blocks([[1.0], [5.0], [3.0]])
    # The cache hands candidates in recency order; LRU takes the head.
    assert LruReplacement().victim(blocks, RNG) is blocks[0]
    assert LruReplacement().victim([], RNG) is None


def test_random_picks_member():
    blocks = make_blocks([[1.0], [2.0], [3.0]])
    policy = RandomReplacement()
    for _ in range(10):
        assert policy.victim(blocks, RNG) in blocks
    assert policy.victim([], RNG) is None


def test_lfu_prefers_least_frequently_used():
    blocks = make_blocks([[1.0, 2.0, 3.0], [4.0], [5.0, 6.0]])
    assert LfuReplacement().victim(blocks, RNG) is blocks[1]


def test_lfu_ties_broken_by_recency():
    blocks = make_blocks([[9.0], [2.0]])
    assert LfuReplacement().victim(blocks, RNG) is blocks[1]


def test_slru_prefers_single_reference_blocks():
    blocks = make_blocks([[1.0, 8.0], [5.0], [3.0]])
    # blocks[1] and blocks[2] are probationary (one access); oldest of those wins.
    assert SlruReplacement().victim(blocks, RNG) is blocks[2]


def test_slru_falls_back_to_protected():
    blocks = make_blocks([[1.0, 2.0], [3.0, 9.0]])
    assert SlruReplacement().victim(blocks, RNG) is blocks[0]


def test_lru_k_evicts_blocks_with_short_history_first():
    blocks = make_blocks([[1.0, 2.0], [5.0]])
    # blocks[1] has fewer than K=2 accesses -> treated as infinitely old.
    assert LruKReplacement(k=2).victim(blocks, RNG) is blocks[1]


def test_lru_k_compares_kth_access():
    blocks = make_blocks([[1.0, 10.0], [2.0, 3.0]])
    # K-th most recent (2nd newest): 1.0 vs 2.0 -> evict the first.
    assert LruKReplacement(k=2).victim(blocks, RNG) is blocks[0]


def test_lru_k_requires_positive_k():
    with pytest.raises(ConfigurationError):
        LruKReplacement(k=0)


@pytest.mark.parametrize(
    "name,cls",
    [
        ("lru", LruReplacement),
        ("random", RandomReplacement),
        ("lfu", LfuReplacement),
        ("slru", SlruReplacement),
        ("lru-k", LruKReplacement),
    ],
)
def test_factory(name, cls):
    assert isinstance(make_replacement_policy(name), cls)


def test_factory_rejects_unknown():
    with pytest.raises(ConfigurationError):
        make_replacement_policy("mru")
