"""Cache replacement policies: the event-driven O(1) subsystem.

These tests drive each policy directly through its event interface
(``on_insert`` / ``on_access`` / ``on_evict`` / ``victim``) using a small
in-memory harness (:class:`MiniCache`) that mirrors how
:class:`repro.core.cache.BlockCache` calls it — no scheduler needed.
"""

import random

import pytest

from repro.core.blocks import BlockId, BlockState, CacheBlock
from repro.core.replacement import (
    ArcPolicy,
    ClockPolicy,
    LfuPolicy,
    LruKPolicy,
    LruPolicy,
    POLICY_NAMES,
    PolicyCounters,
    RandomPolicy,
    SlruPolicy,
    TwoQPolicy,
    make_replacement_policy,
)
from repro.errors import ConfigurationError


def make_block(file_id, block_no, slot=0):
    block = CacheBlock(slot, 4096, False)
    block.block_id = BlockId(file_id, block_no)
    block.state = BlockState.CLEAN
    return block


class MiniCache:
    """Fixed-capacity cache skeleton driving a policy like BlockCache does."""

    def __init__(self, policy_name, capacity, rng=None, **kwargs):
        self.policy = make_replacement_policy(policy_name, capacity, rng=rng, **kwargs)
        self.capacity = capacity
        self.resident = {}
        self.clock = 0.0
        self.hits = 0
        self.misses = 0
        self.evicted = []

    def access(self, file_id, block_no=0):
        """One reference; returns True on hit."""
        self.clock += 1.0
        key = BlockId(file_id, block_no)
        block = self.resident.get(key)
        if block is not None:
            self.hits += 1
            block.record_access(self.clock)
            self.policy.on_access(block)
            return True
        self.misses += 1
        if len(self.resident) >= self.capacity:
            victim = self.policy.victim(incoming=key)
            assert victim is not None, "a fully clean cache must always yield a victim"
            self.policy.on_evict(victim, ghost=True)
            del self.resident[victim.block_id]
            self.evicted.append(victim.block_id)
        block = make_block(*key)
        block.record_access(self.clock)
        self.resident[key] = block
        self.policy.on_insert(block)
        return False

    def keys(self):
        return {key.file_id for key in self.resident}


# ---------------------------------------------------------------- LRU


def test_lru_evicts_least_recently_used():
    cache = MiniCache("lru", 3)
    for fid in (1, 2, 3):
        cache.access(fid)
    cache.access(1)  # 2 is now the LRU block
    cache.access(4)
    assert cache.evicted == [BlockId(2, 0)]
    assert cache.keys() == {1, 3, 4}


def test_lru_victim_skips_ineligible_blocks():
    policy = LruPolicy(4)
    blocks = [make_block(i, 0) for i in range(3)]
    for block in blocks:
        policy.on_insert(block)
    blocks[0].pin()  # LRU but pinned
    blocks[1].state = BlockState.DIRTY  # next, but dirty
    assert policy.victim() is blocks[2]
    blocks[1].state = BlockState.CLEAN
    assert policy.victim() is blocks[1]


def test_victim_none_when_nothing_evictable():
    policy = LruPolicy(2)
    block = make_block(1, 0)
    policy.on_insert(block)
    block.busy = True
    assert policy.victim() is None
    assert policy.victim(peek=True) is None


# ---------------------------------------------------------------- Random


def test_random_picks_resident_member_deterministically():
    rng = random.Random(42)
    cache = MiniCache("random", 4, rng=rng)
    for fid in range(8):
        cache.access(fid)
    assert len(cache.resident) == 4
    assert len(cache.evicted) == 4
    # Same seed, same trace -> identical eviction sequence.
    rerun = MiniCache("random", 4, rng=random.Random(42))
    for fid in range(8):
        rerun.access(fid)
    assert rerun.evicted == cache.evicted


def test_random_falls_back_when_probes_miss():
    policy = RandomPolicy(4, rng=random.Random(1))
    blocks = [make_block(i, 0) for i in range(4)]
    for block in blocks:
        policy.on_insert(block)
    for block in blocks[:3]:
        block.pin()
    # Only one eligible block; probing plus the linear fallback must find it.
    for _ in range(5):
        assert policy.victim() is blocks[3]


# ---------------------------------------------------------------- LFU


def test_lfu_evicts_least_frequently_used():
    cache = MiniCache("lfu", 3)
    cache.access(1)
    cache.access(1)
    cache.access(2)
    cache.access(3)
    cache.access(3)
    cache.access(4)  # 2 has the lowest frequency
    assert cache.evicted == [BlockId(2, 0)]


def test_lfu_breaks_frequency_ties_by_recency():
    cache = MiniCache("lfu", 2)
    cache.access(1)
    cache.access(2)
    cache.access(3)  # 1 and 2 tie at frequency 1; 1 is older
    assert cache.evicted == [BlockId(1, 0)]


# ---------------------------------------------------------------- SLRU


def test_slru_evicts_probationary_before_protected():
    cache = MiniCache("slru", 4, slru_fraction=0.5)
    cache.access(1)
    cache.access(1)  # promoted to protected
    cache.access(2)
    cache.access(3)
    cache.access(4)
    cache.access(5)  # probation LRU (2) goes first, never 1
    assert cache.evicted == [BlockId(2, 0)]
    assert 1 in cache.keys()


def test_slru_demotes_when_protected_overflows():
    policy = SlruPolicy(4, protected_fraction=0.5)  # protected capacity 2
    blocks = [make_block(i, 0) for i in range(4)]
    for block in blocks:
        policy.on_insert(block)
    for block in blocks[:3]:
        policy.on_access(block)  # promote 0, 1, 2 -> 0 demoted back
    snap = policy.snapshot()
    assert snap["protected"] == 2
    assert snap["probationary"] == 2
    # Demoted block 0 is back in probation at the MRU end; 3 is the LRU.
    assert policy.victim() is blocks[3]


# ---------------------------------------------------------------- LRU-K


def test_lru_k_evicts_short_history_blocks_first():
    cache = MiniCache("lru-k", 3, k=2)
    cache.access(1)
    cache.access(1)  # mature (2 references)
    cache.access(2)
    cache.access(3)
    cache.access(4)  # 2 and 3 have < K references; 2 is LRU among them
    assert cache.evicted == [BlockId(2, 0)]
    assert 1 in cache.keys()


def test_lru_k_mature_blocks_evicted_in_recency_order():
    policy = LruKPolicy(4, k=2)
    blocks = [make_block(i, 0) for i in range(2)]
    for block in blocks:
        block.record_access(1.0)
        policy.on_insert(block)
    for block in blocks:
        block.record_access(2.0)
        policy.on_access(block)  # both mature now
    policy.on_access(blocks[0])  # 0 most recently referenced
    assert policy.victim() is blocks[1]


def test_lru_k_requires_positive_k():
    with pytest.raises(ConfigurationError):
        LruKPolicy(4, k=0)


# ---------------------------------------------------------------- shared


def test_on_evict_for_unknown_block_is_harmless():
    policy = LruPolicy(2)
    policy.on_evict(make_block(9, 9), ghost=True)
    assert policy.resident_count == 0


def test_policies_track_residency():
    for name in POLICY_NAMES:
        cache = MiniCache(name, 4, rng=random.Random(3))
        for fid in range(10):
            cache.access(fid)
        assert cache.policy.resident_count == 4, name
        assert len(cache.resident) == 4, name


def test_invalidate_leaves_no_ghost():
    for name in ("arc", "2q"):
        policy = make_replacement_policy(name, 4)
        block = make_block(1, 0)
        policy.on_insert(block)
        policy.on_evict(block, ghost=False)
        # Re-inserting the same identity must not register a ghost hit.
        policy.on_insert(make_block(1, 0))
        assert policy.stats.ghost_hits == 0, name


def test_victim_scan_steps_counted():
    cache = MiniCache("lru", 2)
    for fid in range(4):
        cache.access(fid)
    assert cache.policy.stats.victim_scan_steps >= 2  # one step per eviction
    assert isinstance(cache.policy.stats, PolicyCounters)


def test_capacity_must_be_positive():
    with pytest.raises(ConfigurationError):
        LruPolicy(0)


# ---------------------------------------------------------------- factory


@pytest.mark.parametrize(
    "name,cls",
    [
        ("lru", LruPolicy),
        ("random", RandomPolicy),
        ("lfu", LfuPolicy),
        ("slru", SlruPolicy),
        ("lru-k", LruKPolicy),
        ("clock", ClockPolicy),
        ("2q", TwoQPolicy),
        ("arc", ArcPolicy),
    ],
)
def test_factory(name, cls):
    policy = make_replacement_policy(name, 16)
    assert isinstance(policy, cls)
    assert policy.name == name


def test_factory_rejects_unknown():
    with pytest.raises(ConfigurationError):
        make_replacement_policy("mru", 16)


def test_factory_forwards_parameters():
    slru = make_replacement_policy("slru", 16, slru_fraction=0.25)
    assert slru.protected_capacity == 4
    lru_k = make_replacement_policy("lru-k", 16, k=3)
    assert lru_k.k == 3
    twoq = make_replacement_policy("2q", 16, twoq_in_fraction=0.5, twoq_out_fraction=1.0)
    assert twoq.k_in == 8
    assert twoq.k_out == 16
