"""The NFS-style front-end: procedures, status codes, loop-back transport."""

import pytest

from repro.pfs.filesystem import PegasusFileSystem
from repro.pfs.nfs import NfsError, NfsLoopbackClient, NfsProcedure, NfsServer, NfsStatus
from repro.config import CacheConfig, LayoutConfig
from repro.units import KB, MB


@pytest.fixture
def nfs():
    pfs = PegasusFileSystem(
        size_bytes=16 * MB,
        cache=CacheConfig(size_bytes=1 * MB),
        layout=LayoutConfig(segment_size=64 * KB),
    )
    pfs.format()
    server = NfsServer(pfs.fs, num_threads=3)
    client = NfsLoopbackClient(server)
    return pfs, server, client


def test_mount_and_getattr_root(nfs):
    _pfs, _server, client = nfs
    attr = client.getattr(client.root)
    assert attr["kind"] == "directory"
    assert attr["ino"] == 2


def test_create_write_read(nfs):
    _pfs, _server, client = nfs
    handle = client.create(client.root, "file.txt")
    assert client.write(handle, 0, b"over the wire") == 13
    assert client.read(handle, 0, 13) == b"over the wire"
    assert client.getattr(handle)["size"] == 13


def test_lookup_and_stale_handles(nfs):
    _pfs, _server, client = nfs
    handle = client.create(client.root, "gone.txt")
    assert client.lookup(client.root, "gone.txt") == handle
    client.remove(client.root, "gone.txt")
    with pytest.raises(NfsError) as excinfo:
        client.getattr(handle)
    assert excinfo.value.status in (NfsStatus.ERR_STALE, NfsStatus.ERR_NOENT, NfsStatus.ERR_IO)


def test_lookup_missing_returns_noent(nfs):
    _pfs, _server, client = nfs
    with pytest.raises(NfsError) as excinfo:
        client.lookup(client.root, "does-not-exist")
    assert excinfo.value.status is NfsStatus.ERR_NOENT


def test_mkdir_readdir_rmdir(nfs):
    _pfs, _server, client = nfs
    directory = client.mkdir(client.root, "subdir")
    client.create(directory, "inner")
    entries = client.readdir(directory)
    assert "inner" in entries
    with pytest.raises(NfsError) as excinfo:
        client.rmdir(client.root, "subdir")
    assert excinfo.value.status is NfsStatus.ERR_NOTEMPTY
    client.remove(directory, "inner")
    client.rmdir(client.root, "subdir")
    assert "subdir" not in client.readdir(client.root)


def test_rename(nfs):
    _pfs, _server, client = nfs
    client.create(client.root, "old-name")
    client.rename(client.root, "old-name", client.root, "new-name")
    entries = client.readdir(client.root)
    assert "new-name" in entries and "old-name" not in entries


def test_symlink_and_readlink(nfs):
    _pfs, _server, client = nfs
    handle = client.symlink(client.root, "link", "/target/elsewhere")
    assert client.readlink(handle) == "/target/elsewhere"


def test_setattr_truncates(nfs):
    _pfs, _server, client = nfs
    handle = client.create(client.root, "to-truncate")
    client.write(handle, 0, b"X" * 10000)
    attr = client.setattr(handle, size=100)
    assert attr["size"] == 100


def test_statfs(nfs):
    _pfs, _server, client = nfs
    result = client.statfs()
    assert result["block_size"] == 4 * KB
    assert 0 < result["free_blocks"] <= result["total_blocks"]


def test_create_duplicate_returns_exist(nfs):
    _pfs, _server, client = nfs
    client.create(client.root, "twice")
    with pytest.raises(NfsError) as excinfo:
        client.create(client.root, "twice")
    assert excinfo.value.status is NfsStatus.ERR_EXIST


def test_null_procedure(nfs):
    _pfs, _server, client = nfs
    reply = client.call(NfsProcedure.NULL)
    assert reply.ok


def test_server_statistics(nfs):
    _pfs, server, client = nfs
    client.create(client.root, "counted")
    client.readdir(client.root)
    assert server.requests_served >= 2
    assert server.per_procedure.get("create") == 1


def test_nfs_data_visible_through_local_interface(nfs):
    pfs, _server, client = nfs
    handle = client.create(client.root, "shared.txt")
    client.write(handle, 0, b"written via NFS")
    assert pfs.read_file("/shared.txt") == b"written via NFS"
