"""On-disk encodings: superblock, inodes, directories, checkpoints, summaries."""

import pytest

from repro.core import codec
from repro.core.inode import FileKind, Inode
from repro.errors import StorageError


def test_superblock_roundtrip():
    packed = codec.pack_superblock(4096, 64, 100_000, 4242, 3)
    fields = codec.unpack_superblock(packed + bytes(100))
    assert fields["block_size"] == 4096
    assert fields["segment_size_blocks"] == 64
    assert fields["total_blocks"] == 100_000
    assert fields["checkpoint_addr"] == 4242
    assert fields["checkpoint_blocks"] == 3


def test_superblock_bad_magic():
    with pytest.raises(StorageError):
        codec.unpack_superblock(bytes(64))


def test_inode_roundtrip():
    inode = Inode(
        number=17,
        kind=FileKind.REGULAR,
        size=123456,
        nlink=2,
        uid=10,
        gid=20,
        mode=0o640,
        atime=1.5,
        mtime=2.5,
        ctime=3.5,
        generation=4,
        block_map={0: 100, 5: 205, 2: 330},
    )
    unpacked = codec.unpack_inode(codec.pack_inode(inode))
    assert unpacked.number == 17
    assert unpacked.kind is FileKind.REGULAR
    assert unpacked.size == 123456
    assert unpacked.block_map == {0: 100, 2: 330, 5: 205}
    assert unpacked.mtime == 2.5
    assert unpacked.generation == 4


def test_inode_symlink_target_roundtrip():
    inode = Inode(number=3, kind=FileKind.SYMLINK, symlink_target="/target/path")
    unpacked = codec.unpack_inode(codec.pack_inode(inode))
    assert unpacked.symlink_target == "/target/path"
    assert unpacked.kind is FileKind.SYMLINK


def test_inode_packed_size_matches():
    inode = Inode(number=1, kind=FileKind.REGULAR, block_map={i: i * 10 for i in range(20)})
    assert codec.inode_packed_size(inode) == len(codec.pack_inode(inode))


def test_inode_bad_magic():
    with pytest.raises(StorageError):
        codec.unpack_inode(bytes(200))


def test_directory_roundtrip():
    entries = {"alpha.txt": 5, "beta": 9, "unicode-ß": 12}
    assert codec.unpack_directory(codec.pack_directory(entries)) == entries


def test_empty_directory():
    assert codec.unpack_directory(codec.pack_directory({})) == {}
    assert codec.unpack_directory(b"") == {}


def test_directory_truncated_data_raises():
    packed = codec.pack_directory({"file": 1})
    with pytest.raises(StorageError):
        codec.unpack_directory(packed[:5])


def test_checkpoint_roundtrip():
    packed = codec.pack_checkpoint(
        timestamp=12.75,
        next_inode_number=99,
        next_segment=7,
        inode_map={2: (100, 1), 5: (200, 2)},
        segment_usage={0: 10, 3: 4},
    )
    fields = codec.unpack_checkpoint(packed)
    assert fields["timestamp"] == 12.75
    assert fields["next_inode_number"] == 99
    assert fields["next_segment"] == 7
    assert fields["inode_map"] == {2: (100, 1), 5: (200, 2)}
    assert fields["segment_usage"] == {0: 10, 3: 4}


def test_checkpoint_bad_magic():
    with pytest.raises(StorageError):
        codec.unpack_checkpoint(bytes(64))


def test_segment_summary_roundtrip():
    entries = [(2, 0, False), (2, 1, False), (7, 0, True)]
    assert codec.unpack_segment_summary(codec.pack_segment_summary(entries)) == entries


def test_segment_summary_empty():
    assert codec.unpack_segment_summary(codec.pack_segment_summary([])) == []


def test_segment_summary_bad_magic():
    with pytest.raises(StorageError):
        codec.unpack_segment_summary(bytes(16))
