"""The durable metadata tier: WAL framing, group commit, manifest, replay.

The contracts pinned here:

* WAL records round-trip through the CRC framing and replay stops exactly
  at a torn tail (partial frame or damaged CRC);
* group commit batches by record count, byte count and time interval, and
  ``group_commit=False`` degenerates to commit-per-record;
* the manifest encodes/decodes atomically-rewritten snapshots and treats
  any damage as "absent";
* ``ClusterPlacement.flip`` is idempotent and replaying the same WAL twice
  converges to the same routing table (recovery is re-runnable);
* a FLIP only takes effect at recovery when a *later* COMMIT for the same
  file is durable — the rule the crash-at-every-step harness relies on;
* any durable prefix of the WAL, replayed over the manifest, yields a
  routing table consistent with the commit protocol (property-based).
"""

import pytest

from repro.config import ClusterConfig
from repro.core.cluster.placement import ClusterPlacement
from repro.core.metadata import (
    CrashPoints,
    DurableStore,
    FileMetadataDevice,
    Manifest,
    ManifestStore,
    MemoryMetadataDevice,
    MetadataTier,
    SimulatedCrash,
    WalRecord,
    WriteAheadLog,
    decode_wal,
)
from repro.core.metadata.wal import (
    REC_BEGIN,
    REC_COMMIT,
    REC_END,
    REC_FLIP,
    REC_FORGET,
)
from repro.core.scheduler import Scheduler
from repro.core.storage.array import HashPlacement
from repro.errors import ConfigurationError
from tests.conftest import run


def make_tier(
    scheduler,
    nodes=2,
    volumes_per_node=1,
    store=None,
    crashpoints=None,
    config=None,
    **wal_kwargs,
):
    total = nodes * volumes_per_node
    placement = ClusterPlacement(HashPlacement(total), nodes, volumes_per_node)
    device = MemoryMetadataDevice(scheduler, store=store)
    wal = WriteAheadLog(scheduler, device, crashpoints=crashpoints, **wal_kwargs)
    manifest_store = ManifestStore(scheduler, device, crashpoints=crashpoints)
    if config is None:
        config = ClusterConfig(nodes=nodes)
    tier = MetadataTier(
        scheduler, placement, wal, manifest_store, config, crashpoints=crashpoints
    )
    return tier, placement, device


# --------------------------------------------------------------------------- WAL framing


def test_wal_records_roundtrip_through_the_framing():
    records = [
        WalRecord(lsn=1, rtype=REC_BEGIN, file_id=7, arg=0),
        WalRecord(lsn=2, rtype=REC_FLIP, file_id=7, arg=3),
        WalRecord(lsn=3, rtype=REC_COMMIT, file_id=7, arg=0),
        WalRecord(lsn=4, rtype=REC_END, file_id=7, arg=0),
        WalRecord(lsn=5, rtype=REC_FORGET, file_id=-9, arg=-1),
    ]
    data = b"".join(r.encode() for r in records)
    decoded, valid = decode_wal(data)
    assert decoded == records
    assert valid == len(data)


def test_wal_replay_stops_at_a_torn_tail():
    records = [WalRecord(lsn=i, rtype=REC_FLIP, file_id=i, arg=0) for i in range(1, 4)]
    data = b"".join(r.encode() for r in records)
    frame = len(records[0].encode())
    # A frame cut anywhere — mid-header or mid-body — ends the replay there.
    for cut in (1, 5, frame + 3, 2 * frame + frame // 2):
        decoded, valid = decode_wal(data[:cut])
        assert decoded == records[: cut // frame]
        assert valid == (cut // frame) * frame


def test_wal_replay_stops_at_a_damaged_record():
    records = [WalRecord(lsn=i, rtype=REC_FLIP, file_id=i, arg=0) for i in range(1, 4)]
    data = bytearray(b"".join(r.encode() for r in records))
    frame = len(records[0].encode())
    data[frame + 10] ^= 0xFF  # corrupt the second record's body
    decoded, valid = decode_wal(bytes(data))
    assert decoded == records[:1]
    assert valid == frame


def test_group_commit_triggers_on_record_count(scheduler):
    device = MemoryMetadataDevice(scheduler)
    wal = WriteAheadLog(scheduler, device, commit_records=3, commit_bytes=1 << 20)
    for i in range(2):
        wal.append(REC_BEGIN, i)
    run(scheduler, wal.maybe_sync)
    assert device.wal_bytes == 0  # not due yet: everything still buffered
    wal.append(REC_BEGIN, 2)
    run(scheduler, wal.maybe_sync)
    assert wal.commits == 1 and wal.pending_records == 0
    records, _ = decode_wal(bytes(device.store.wal))
    assert [r.lsn for r in records] == [1, 2, 3]


def test_group_commit_triggers_on_byte_count(scheduler):
    device = MemoryMetadataDevice(scheduler)
    frame = len(WalRecord(1, REC_BEGIN, 0, 0).encode())
    wal = WriteAheadLog(
        scheduler, device, commit_records=100, commit_bytes=2 * frame
    )
    wal.append(REC_BEGIN, 0)
    run(scheduler, wal.maybe_sync)
    assert wal.commits == 0
    wal.append(REC_FLIP, 0, 1)
    run(scheduler, wal.maybe_sync)
    assert wal.commits == 1 and device.wal_bytes == 2 * frame


def test_group_commit_interval_daemon_commits_idle_records(scheduler):
    device = MemoryMetadataDevice(scheduler)
    wal = WriteAheadLog(
        scheduler, device, commit_records=100, commit_bytes=1 << 20, commit_interval=0.5
    )
    wal.append(REC_FORGET, 9)
    assert device.wal_bytes == 0
    scheduler.run(until=2.0)
    assert wal.commits == 1
    records, _ = decode_wal(bytes(device.store.wal))
    assert [r.rtype for r in records] == [REC_FORGET]


def test_without_group_commit_every_record_commits(scheduler):
    device = MemoryMetadataDevice(scheduler)
    wal = WriteAheadLog(scheduler, device, group_commit=False, commit_records=100)
    for i in range(3):
        wal.append(REC_BEGIN, i)
        run(scheduler, wal.maybe_sync)
    assert wal.commits == 3
    # No batching means no interval daemon either.
    assert wal._daemon is None


def test_wal_never_journalling_never_touches_the_scheduler(scheduler):
    device = MemoryMetadataDevice(scheduler)
    WriteAheadLog(scheduler, device)
    assert scheduler.threads == ()  # the daemon is lazily spawned on append


# --------------------------------------------------------------------------- manifest


def test_manifest_roundtrip():
    manifest = Manifest(
        epoch=3,
        nodes=2,
        volumes_per_node=2,
        placement="hash",
        checkpoint_lsn=41,
        overrides={7: 1, 12: 3},
    )
    decoded = Manifest.decode(manifest.encode())
    assert decoded == manifest


def test_manifest_damage_reads_as_absent():
    manifest = Manifest(1, 2, 1, "hash", 0, {5: 1})
    data = bytearray(manifest.encode())
    assert Manifest.decode(None) is None
    assert Manifest.decode(b"") is None
    assert Manifest.decode(bytes(data[:6])) is None  # truncated
    data[12] ^= 0xFF
    assert Manifest.decode(bytes(data)) is None  # CRC mismatch
    future = Manifest(1, 2, 1, "hash", 0, version=99)
    assert Manifest.decode(future.encode()) is None  # unknown version


def test_manifest_store_rewrites_whole_snapshots(scheduler):
    device = MemoryMetadataDevice(scheduler)
    store = ManifestStore(scheduler, device)
    assert run(scheduler, store.read) is None
    first = Manifest(1, 2, 1, "hash", 3, {5: 1})
    second = Manifest(2, 2, 1, "hash", 9, {})
    run(scheduler, store.write, first)
    run(scheduler, store.write, second)
    assert run(scheduler, store.read) == second  # replaced, not appended
    assert store.writes == 2


def test_file_metadata_device_persists_real_bytes(tmp_path, scheduler):
    base = tmp_path / "meta"
    device = FileMetadataDevice(scheduler, base)
    run(scheduler, device.append_wal, b"abc")
    run(scheduler, device.append_wal, b"def")
    run(scheduler, device.write_manifest, b"manifest-1")
    # A second device over the same paths sees everything (a "reboot").
    again = FileMetadataDevice(Scheduler(), base)
    assert bytes(again._read_wal()) == b"abcdef"
    assert again._read_manifest() == b"manifest-1"
    assert again.wal_bytes == 6
    run(scheduler, device.truncate_wal)
    assert again.wal_bytes == 0
    device.wipe()
    assert again._read_manifest() is None


# --------------------------------------------------------------------------- crash points


def test_crash_points_record_and_arm():
    recorder = CrashPoints(recording=True)
    for _ in range(2):
        recorder.hit("a")
    recorder.hit("b")
    assert recorder.seen == [("a", 0), ("a", 1), ("b", 0)]

    armed = CrashPoints(arm=("a", 1))
    armed.hit("a")  # occurrence 0: survives
    armed.hit("b")
    with pytest.raises(SimulatedCrash) as exc_info:
        armed.hit("a")  # occurrence 1: dies
    assert exc_info.value.point == "a" and exc_info.value.occurrence == 1
    # A crash is a BaseException: generic error handling must not eat it.
    assert not isinstance(exc_info.value, Exception)


def test_crash_aborts_the_whole_scheduler(scheduler):
    """A crash in one thread takes down the run loop, not just the thread."""
    cp = CrashPoints(arm=("boom", 0))
    cp.bind(scheduler)

    def victim():
        yield from scheduler.sleep(0.1)
        cp.hit("boom")

    def bystander():
        while True:
            yield from scheduler.sleep(1.0)

    scheduler.spawn(victim)
    scheduler.spawn(bystander, daemon=True)
    with pytest.raises(SimulatedCrash):
        scheduler.run()
    # The abort is consumed once raised: the loop can step again (the
    # harness discards a crashed scheduler anyway, like a dead machine).
    scheduler.run(until=5.0, raise_failures=False)


# --------------------------------------------------------------------------- flip / replay idempotence


def test_flip_is_idempotent():
    placement = ClusterPlacement(HashPlacement(4), nodes=2, volumes_per_node=2)
    file_id = 5
    native = placement.volume_of_file(file_id)
    target = (native + 1) % 4
    placement.flip(file_id, target)
    table = placement.overrides_snapshot()
    placement.flip(file_id, target)  # again: same table, no duplicate entry
    assert placement.overrides_snapshot() == table
    assert placement.displaced_files == 1
    assert placement.volume_of_file(file_id) == target


def test_double_replay_of_the_same_wal_converges(scheduler):
    """Replaying the journal twice (crash during recovery, then recovery
    again) must land on the identical routing table."""
    store = DurableStore()
    tier, placement, _ = make_tier(scheduler, store=store)
    file_id = 4
    native = placement.volume_of_file(file_id)
    target = 1 - native
    tier.journal_begin(file_id, native, target)
    placement.flip(file_id, target)
    tier.journal_flip(file_id, target)
    run(scheduler, tier.journal_commit, file_id)
    tier.journal_end(file_id)

    fresh_tier, fresh_placement, _ = make_tier(scheduler, store=store)
    run(scheduler, fresh_tier.recover)
    first = fresh_placement.overrides_snapshot()
    assert first == {file_id: target}
    run(scheduler, fresh_tier.recover)  # replay the same records again
    assert fresh_placement.overrides_snapshot() == first
    # BEGIN/FLIP/COMMIT are durable; END was still buffered at the "crash".
    assert fresh_tier.replayed_records == 3


# --------------------------------------------------------------------------- recovery semantics


def test_uncommitted_flip_is_not_applied(scheduler):
    store = DurableStore()
    tier, placement, _ = make_tier(scheduler, store=store)
    file_id = 4
    target = 1 - placement.volume_of_file(file_id)
    tier.journal_begin(file_id, placement.volume_of_file(file_id), target)
    tier.journal_flip(file_id, target)
    run(scheduler, tier.wal.sync)  # durable, but no COMMIT record

    fresh_tier, fresh_placement, _ = make_tier(scheduler, store=store)
    run(scheduler, fresh_tier.recover)
    # Without a durable COMMIT the old home still owns the only full copy.
    assert fresh_placement.overrides_snapshot() == {}
    assert fresh_tier.applied_flips == 0


def test_forget_is_applied_and_only_journalled_for_overrides(scheduler):
    store = DurableStore()
    tier, placement, _ = make_tier(scheduler, store=store)
    file_id = 4
    target = 1 - placement.volume_of_file(file_id)
    placement.flip(file_id, target)
    tier.journal_flip(file_id, target)
    run(scheduler, tier.journal_commit, file_id)
    placement.forget(file_id)  # journals FORGET via the hook
    placement.forget(99)  # no override: must journal nothing
    run(scheduler, tier.wal.sync)
    records, _ = decode_wal(bytes(store.wal))
    assert [r.rtype for r in records] == [REC_FLIP, REC_COMMIT, REC_FORGET]
    assert records[-1].file_id == file_id

    fresh_tier, fresh_placement, _ = make_tier(scheduler, store=store)
    run(scheduler, fresh_tier.recover)
    assert fresh_placement.overrides_snapshot() == {}
    assert fresh_tier.applied_forgets == 1


def test_checkpoint_folds_wal_into_manifest(scheduler):
    store = DurableStore()
    tier, placement, device = make_tier(scheduler, store=store)
    file_id = 4
    target = 1 - placement.volume_of_file(file_id)
    placement.flip(file_id, target)
    tier.journal_flip(file_id, target)
    run(scheduler, tier.journal_commit, file_id)
    run(scheduler, tier.checkpoint)
    assert device.wal_bytes == 0  # the log was folded in and reset
    assert store.manifest is not None

    fresh_tier, fresh_placement, _ = make_tier(scheduler, store=store)
    run(scheduler, fresh_tier.recover)
    assert fresh_placement.overrides_snapshot() == {file_id: target}
    assert fresh_tier.replayed_records == 0  # all state came from the manifest
    # LSNs continue past the checkpoint instead of restarting at 1.
    assert fresh_tier.wal.next_lsn == tier.wal.next_lsn


def test_stale_records_below_the_checkpoint_are_skipped(scheduler):
    """A crash between manifest rewrite and WAL truncate leaves already-
    folded records in the log; replay must not apply them twice."""
    store = DurableStore()
    tier, placement, device = make_tier(scheduler, store=store)
    file_id = 4
    target = 1 - placement.volume_of_file(file_id)
    placement.flip(file_id, target)
    tier.journal_flip(file_id, target)
    run(scheduler, tier.journal_commit, file_id)
    wal_image = bytes(store.wal)
    run(scheduler, tier.checkpoint)
    store.wal[:] = wal_image  # undo the truncate: the crash left stale records

    # The file was then forgotten in memory but the manifest already has the
    # override; stale sub-checkpoint records must not resurrect anything.
    fresh_tier, fresh_placement, _ = make_tier(scheduler, store=store)
    run(scheduler, fresh_tier.recover)
    assert fresh_placement.overrides_snapshot() == {file_id: target}
    assert fresh_tier.replayed_records == 0  # every record was stale


def test_recovery_rejects_a_mismatched_manifest(scheduler):
    store = DurableStore()
    tier, placement, _ = make_tier(scheduler, nodes=2, store=store)
    tier.journal_flip(4, 1)
    run(scheduler, tier.journal_commit, 4)
    run(scheduler, tier.checkpoint)
    wrong_tier, _, _ = make_tier(scheduler, nodes=4, store=store)
    with pytest.raises(ConfigurationError):
        run(scheduler, wrong_tier.recover)


def test_mount_format_wipes_stale_metadata(scheduler):
    store = DurableStore()
    tier, placement, _ = make_tier(scheduler, store=store)
    placement.flip(4, 1)
    tier.journal_flip(4, 1)
    run(scheduler, tier.journal_commit, 4)
    run(scheduler, tier.checkpoint)
    fresh_tier, fresh_placement, device = make_tier(scheduler, store=store)
    run(scheduler, fresh_tier.on_mount, True)  # format: stale routing must die
    assert device.wal_bytes == 0 and store.manifest is None
    assert fresh_placement.overrides_snapshot() == {}


def test_idle_tier_unmounts_without_touching_the_device(scheduler):
    store = DurableStore()
    tier, _, _ = make_tier(scheduler, store=store)
    run(scheduler, tier.on_unmount)
    assert store.manifest is None and len(store.wal) == 0


# --------------------------------------------------------------------------- prefix-replay property

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

NUM_VOLUMES = 4


@st.composite
def migration_histories(draw):
    """A sequence of (file_id, target, committed, forgotten) migrations."""
    n = draw(st.integers(min_value=1, max_value=8))
    ops = []
    for _ in range(n):
        file_id = draw(st.integers(min_value=2, max_value=7))
        target = draw(st.integers(min_value=0, max_value=NUM_VOLUMES - 1))
        committed = draw(st.booleans())
        forgotten = committed and draw(st.booleans())
        ops.append((file_id, target, committed, forgotten))
    return ops


def encode_history(ops):
    """The durable WAL image a crash-free run of ``ops`` would leave."""
    records = []
    lsn = 0
    for file_id, target, committed, forgotten in ops:
        lsn += 1
        records.append(WalRecord(lsn, REC_BEGIN, file_id, 0))
        lsn += 1
        records.append(WalRecord(lsn, REC_FLIP, file_id, target))
        if committed:
            lsn += 1
            records.append(WalRecord(lsn, REC_COMMIT, file_id, 0))
            lsn += 1
            records.append(WalRecord(lsn, REC_END, file_id, 0))
            if forgotten:
                lsn += 1
                records.append(WalRecord(lsn, REC_FORGET, file_id, 0))
    return b"".join(r.encode() for r in records)


def expected_routes(data):
    """An independent mini-model of the recovery contract: the route of
    every file under the commit rule, given a durable WAL image."""
    records, _ = decode_wal(data)
    commits = {}
    for r in records:
        if r.rtype == REC_COMMIT:
            commits.setdefault(r.file_id, []).append(r.lsn)
    table = {}
    for r in records:
        if r.rtype == REC_FLIP and any(l > r.lsn for l in commits.get(r.file_id, ())):
            table[r.file_id] = r.arg
        elif r.rtype == REC_FORGET:
            table.pop(r.file_id, None)
    return table


@given(ops=migration_histories(), data=st.data())
@settings(max_examples=60, deadline=None)
def test_any_wal_prefix_recovers_a_consistent_routing_table(ops, data):
    """Every durable prefix of the journal — including prefixes cut inside
    a frame, the torn tail — recovers to a routing table under which every
    file routes to a valid volume and the commit protocol's promise holds:
    committed flips route to the new home, uncommitted ones to the old."""
    image = encode_history(ops)
    cut = data.draw(st.integers(min_value=0, max_value=len(image)))
    prefix = image[:cut]

    scheduler = Scheduler(seed=1)
    store = DurableStore()
    store.wal[:] = prefix
    placement = ClusterPlacement(HashPlacement(NUM_VOLUMES), 2, 2)
    device = MemoryMetadataDevice(scheduler, store=store)
    wal = WriteAheadLog(scheduler, device)
    tier = MetadataTier(
        scheduler, placement, wal, ManifestStore(scheduler, device), ClusterConfig(nodes=2)
    )
    run(scheduler, tier.recover)

    table = placement.overrides_snapshot()
    expected = expected_routes(prefix)
    # Striped placement is not in play, so entries flipped back to their
    # native home may be dropped from the table; routing must still agree.
    for file_id in range(2, 8):
        route = placement.volume_of_file(file_id)
        assert 0 <= route < NUM_VOLUMES
        assert route == expected.get(file_id, HashPlacement(NUM_VOLUMES).volume_of_file(file_id))
    for file_id, volume in table.items():
        assert 0 <= volume < NUM_VOLUMES

    # Recovery is idempotent: a second replay converges to the same table.
    run(scheduler, tier.recover)
    assert placement.overrides_snapshot() == table
