"""The simulated hardware: disk specs, the HP97560 model, the SCSI-2 bus."""

import pytest

from repro.core.driver import IOKind, IORequest
from repro.errors import ConfigurationError
from repro.patsy.bus import ScsiBus
from repro.patsy.diskspec import GENERIC_SMALL_DISK, HP97560, DiskSpec, disk_spec_by_name
from repro.patsy.simdisk import SimulatedDisk
from repro.patsy.simdriver import SimulatedDiskDriver
from repro.units import MB
from tests.conftest import run


def test_hp97560_geometry():
    assert HP97560.cylinders == 1962
    assert HP97560.heads == 19
    assert HP97560.sectors_per_track == 72
    assert HP97560.rpm == pytest.approx(4002.0)
    assert HP97560.rotation_time == pytest.approx(60.0 / 4002.0)
    assert HP97560.capacity_bytes > 1_300_000_000


def test_seek_curve_properties():
    assert HP97560.seek_time(0) == 0.0
    short = HP97560.seek_time(10)
    medium = HP97560.seek_time(380)
    long = HP97560.seek_time(1900)
    assert 0 < short < medium < long
    assert long == pytest.approx(HP97560.seek_a_long + HP97560.seek_b_long * 1900)


def test_decompose_roundtrip():
    sector = 12_345
    cylinder, head, sector_in_track = HP97560.decompose(sector)
    rebuilt = (
        cylinder * HP97560.sectors_per_cylinder
        + head * HP97560.sectors_per_track
        + sector_in_track
    )
    assert rebuilt == sector


def test_disk_spec_lookup():
    assert disk_spec_by_name("hp97560") is HP97560
    with pytest.raises(ConfigurationError):
        disk_spec_by_name("quantum-fireball")


def test_disk_spec_validation():
    with pytest.raises(ConfigurationError):
        DiskSpec(name="bad", cylinders=0, heads=1, sectors_per_track=1)


def test_bus_transfer_time_and_contention(fifo_scheduler):
    bus = ScsiBus(fifo_scheduler, bandwidth=10 * MB, arbitration_overhead=0.001)
    finish_times = []

    def user(nbytes):
        yield from bus.transfer(nbytes)
        finish_times.append(fifo_scheduler.now)

    threads = [fifo_scheduler.spawn(user, 1 * MB) for _ in range(2)]
    for thread in threads:
        fifo_scheduler.run_until_complete(thread)
    assert finish_times[0] == pytest.approx(0.101, rel=1e-3)
    # The second transfer had to wait for the first: serialised on the bus.
    assert finish_times[1] == pytest.approx(0.202, rel=1e-3)
    assert bus.transfers == 2
    assert bus.utilisation(fifo_scheduler.now) > 0.9


def test_simulated_disk_read_timing(scheduler):
    bus = ScsiBus(scheduler)
    disk = SimulatedDisk(scheduler, GENERIC_SMALL_DISK, bus)
    driver = SimulatedDiskDriver(scheduler, disk, bus)

    def body():
        request = yield from driver.read(1000, 8)
        return request

    request = run(scheduler, body)
    # A cold read pays controller overhead + seek + rotation + transfer + bus.
    assert request.response_time > GENERIC_SMALL_DISK.controller_overhead
    assert request.response_time < 0.2
    assert 0.0 <= request.rotational_delay <= GENERIC_SMALL_DISK.rotation_time
    assert disk.stats.reads == 1


def test_sequential_read_hits_disk_cache(scheduler):
    bus = ScsiBus(scheduler)
    disk = SimulatedDisk(scheduler, GENERIC_SMALL_DISK, bus)
    driver = SimulatedDiskDriver(scheduler, disk, bus)

    def body():
        first = yield from driver.read(5000, 8)
        # Read-ahead makes the immediately following sectors a cache hit.
        second = yield from driver.read(5008, 8)
        return first, second

    first, second = run(scheduler, body)
    assert not first.disk_cache_hit
    assert second.disk_cache_hit
    assert second.service_time < first.service_time


def test_immediate_reported_write_is_fast(scheduler):
    bus = ScsiBus(scheduler)
    disk = SimulatedDisk(scheduler, GENERIC_SMALL_DISK, bus)
    driver = SimulatedDiskDriver(scheduler, disk, bus)

    def body():
        write = yield from driver.write(2000, 8)
        return write

    write = run(scheduler, body)
    assert disk.stats.immediate_writes == 1
    # No seek/rotation charged to the caller for an immediate-reported write.
    assert write.service_time < 0.01


def test_write_larger_than_disk_cache_pays_mechanical_time(scheduler):
    bus = ScsiBus(scheduler)
    disk = SimulatedDisk(scheduler, GENERIC_SMALL_DISK, bus)
    driver = SimulatedDiskDriver(scheduler, disk, bus)
    big = (GENERIC_SMALL_DISK.cache_bytes // GENERIC_SMALL_DISK.sector_size) + 64

    def body():
        return (yield from driver.write(0, big))

    request = run(scheduler, body)
    assert disk.stats.immediate_writes == 0
    assert request.service_time > 0.01


def test_rotational_delay_statistics_collected(scheduler):
    bus = ScsiBus(scheduler)
    disk = SimulatedDisk(scheduler, GENERIC_SMALL_DISK, bus)
    driver = SimulatedDiskDriver(scheduler, disk, bus)

    def body():
        for sector in (100, 40_000, 9_000, 70_000):
            yield from driver.read(sector, 4)

    run(scheduler, body)
    assert len(disk.stats.rotational_delays) == 4
    assert disk.stats.total_seek_time > 0.0
    assert 0.0 <= disk.stats.mean_rotational_delay() <= GENERIC_SMALL_DISK.rotation_time


def test_driver_shares_request_structure(scheduler):
    """The simulated driver uses the same IORequest structure as real drivers."""
    bus = ScsiBus(scheduler)
    disk = SimulatedDisk(scheduler, GENERIC_SMALL_DISK, bus)
    driver = SimulatedDiskDriver(scheduler, disk, bus)
    request = IORequest(kind=IOKind.READ, sector=0, count=8)

    def body():
        return (yield from driver.submit(request))

    completed = run(scheduler, body)
    assert completed is request
    assert request.completed_at >= request.created_at
