"""Clocks: virtual and real time sources."""

from repro.core.clock import RealClock, VirtualClock


def test_virtual_clock_starts_at_zero():
    clock = VirtualClock()
    assert clock.now() == 0.0
    assert clock.is_virtual


def test_virtual_clock_custom_start():
    clock = VirtualClock(start=10.0)
    assert clock.now() == 10.0


def test_virtual_clock_advances_forward_only():
    clock = VirtualClock()
    clock.advance_to(5.0)
    assert clock.now() == 5.0
    clock.advance_to(3.0)  # never goes backwards
    assert clock.now() == 5.0
    clock.advance_to(6.5)
    assert clock.now() == 6.5


def test_real_clock_uses_monotonic_offset():
    fake_time = {"now": 100.0}
    slept = []

    def monotonic():
        return fake_time["now"]

    def sleep(seconds):
        slept.append(seconds)
        fake_time["now"] += seconds

    clock = RealClock(sleep=sleep, monotonic=monotonic)
    assert clock.now() == 0.0
    assert not clock.is_virtual
    fake_time["now"] = 101.5
    assert abs(clock.now() - 1.5) < 1e-9


def test_real_clock_advance_sleeps_remaining_time():
    fake_time = {"now": 0.0}
    slept = []

    def monotonic():
        return fake_time["now"]

    def sleep(seconds):
        slept.append(seconds)
        fake_time["now"] += seconds

    clock = RealClock(sleep=sleep, monotonic=monotonic)
    clock.advance_to(2.0)
    assert slept and abs(slept[0] - 2.0) < 1e-9
    # Advancing to a time in the past sleeps nothing.
    clock.advance_to(1.0)
    assert len(slept) == 1
