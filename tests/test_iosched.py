"""Disk queue scheduling policies."""

import pytest

from repro.core.driver import IOKind, IORequest
from repro.core.iosched import make_io_scheduler
from repro.errors import ConfigurationError


def req(sector, deadline=None):
    return IORequest(kind=IOKind.READ, sector=sector, count=8, deadline=deadline)


def drain(scheduler, head=0):
    order = []
    position = head
    while len(scheduler):
        request = scheduler.next(position)
        order.append(request.sector)
        position = request.sector
    return order


def test_fcfs_preserves_arrival_order():
    sched = make_io_scheduler("fcfs")
    for sector in (500, 100, 900, 300):
        sched.add(req(sector))
    assert drain(sched) == [500, 100, 900, 300]


def test_clook_services_ascending_then_wraps():
    sched = make_io_scheduler("clook")
    for sector in (500, 100, 900, 300):
        sched.add(req(sector))
    assert drain(sched, head=400) == [500, 900, 100, 300]


def test_clook_empty_returns_none():
    sched = make_io_scheduler("clook")
    assert sched.next(0) is None


def test_look_elevator_reverses_at_edge():
    sched = make_io_scheduler("look")
    for sector in (500, 100, 900):
        sched.add(req(sector))
    order = drain(sched, head=450)
    assert order == [500, 900, 100]


def test_scan_services_all_requests():
    sched = make_io_scheduler("scan")
    sectors = [10, 990, 400, 600]
    for sector in sectors:
        sched.add(req(sector))
    assert sorted(drain(sched, head=500)) == sorted(sectors)


def test_cscan_wraps_to_lowest():
    sched = make_io_scheduler("cscan")
    for sector in (800, 200, 600):
        sched.add(req(sector))
    assert drain(sched, head=500) == [600, 800, 200]


def test_scan_edf_prefers_earliest_deadline():
    sched = make_io_scheduler("scan-edf")
    late = req(100, deadline=10.0)
    soon = req(900, deadline=1.0)
    none = req(50, deadline=None)
    for r in (late, soon, none):
        sched.add(r)
    assert sched.next(0) is soon
    assert sched.next(0) is late
    assert sched.next(0) is none


def test_scan_edf_uses_scan_within_deadline_class():
    sched = make_io_scheduler("scan-edf")
    a = req(700, deadline=1.0)
    b = req(300, deadline=1.02)  # same deadline class at default granularity
    sched.add(a)
    sched.add(b)
    assert sched.next(200) is b


def test_pending_property():
    sched = make_io_scheduler("fcfs")
    sched.add(req(1))
    assert len(sched.pending) == 1


def test_unknown_policy_rejected():
    with pytest.raises(ConfigurationError):
        make_io_scheduler("elevator-2000")
