"""Unit helpers: sizes, times, block arithmetic."""

import pytest

from repro import units


def test_size_constants():
    assert units.KB == 1024
    assert units.MB == 1024 * 1024
    assert units.GB == 1024 ** 3
    assert units.DEFAULT_BLOCK_SIZE == 4096
    assert units.SECTOR_SIZE == 512


def test_bytes_to_blocks_rounds_up():
    assert units.bytes_to_blocks(0) == 0
    assert units.bytes_to_blocks(1) == 1
    assert units.bytes_to_blocks(4096) == 1
    assert units.bytes_to_blocks(4097) == 2
    assert units.bytes_to_blocks(10_000, block_size=1000) == 10


def test_bytes_to_blocks_rejects_negative():
    with pytest.raises(ValueError):
        units.bytes_to_blocks(-1)


def test_blocks_to_bytes():
    assert units.blocks_to_bytes(3) == 3 * 4096
    assert units.blocks_to_bytes(0) == 0
    with pytest.raises(ValueError):
        units.blocks_to_bytes(-2)


def test_block_span_single_block():
    assert list(units.block_span(0, 4096)) == [0]
    assert list(units.block_span(100, 100)) == [0]


def test_block_span_crossing_boundary():
    assert list(units.block_span(4095, 2)) == [0, 1]
    assert list(units.block_span(4096, 1)) == [1]
    assert list(units.block_span(0, 8193)) == [0, 1, 2]


def test_block_span_empty_and_invalid():
    assert list(units.block_span(10, 0)) == []
    with pytest.raises(ValueError):
        units.block_span(-1, 5)


def test_human_bytes():
    assert units.human_bytes(512) == "512B"
    assert units.human_bytes(4096) == "4.0KB"
    assert units.human_bytes(3 * units.MB) == "3.0MB"


def test_human_time_ranges():
    assert units.human_time(5e-6).endswith("us")
    assert units.human_time(0.0172) == "17.2ms"
    assert units.human_time(2.5) == "2.50s"
    assert units.human_time(90) == "1.5min"
    assert units.human_time(7200).endswith("h")


def test_human_time_negative():
    assert units.human_time(-0.5) == "-500.0ms"
