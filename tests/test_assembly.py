"""The assembly layer: registry, StackSpec, bindings and build_stack.

The tentpole contracts: a spec round-trips through dict form, one spec
builds either world through the same builder, third-party policies plug in
through the registry without editing core modules, and a PFS can mount a
multi-volume array spec and move real bytes through it.
"""

import pytest

from repro.assembly import (
    OnlineBinding,
    SimulatedBinding,
    StackSpec,
    build_stack,
    registry,
)
from repro.assembly.registry import ComponentRegistry
from repro.config import (
    ArrayConfig,
    CacheConfig,
    FlushConfig,
    HostConfig,
    LayoutConfig,
    SimulationConfig,
    small_test_config,
    sun4_280_config,
)
from repro.core.cache import BlockCache
from repro.core.flush import FlushPolicy, ShardedFlushPolicy, make_flush_policy
from repro.core.storage.array import RoutedLayout, ShardedCache, VolumeSet
from repro.core.storage.cleaner import CleanerSet
from repro.core.storage.lfs import LogStructuredLayout
from repro.errors import ConfigurationError
from repro.patsy.experiments import DelayedWriteExperiment, experiment_config
from repro.patsy.simulator import PatsySimulator
from repro.pfs.filesystem import PegasusFileSystem
from repro.units import KB, MB


# --------------------------------------------------------------------------- registry


def test_registry_register_create_and_introspection():
    reg = ComponentRegistry()
    reg.register("flush", "noop", lambda config: ("noop", config))
    assert reg.has("flush", "noop")
    assert reg.names("flush") == ["noop"]
    assert "flush" in reg.kinds()
    kind, config = reg.create("flush", "noop", 42)
    assert (kind, config) == ("noop", 42)


def test_registry_rejects_duplicates_unless_replacing():
    reg = ComponentRegistry()
    reg.register("cleaner", "x", lambda: 1)
    with pytest.raises(ConfigurationError):
        reg.register("cleaner", "x", lambda: 2)
    reg.register("cleaner", "x", lambda: 2, replace=True)
    assert reg.create("cleaner", "x") == 2
    reg.unregister("cleaner", "x")
    assert not reg.has("cleaner", "x")
    with pytest.raises(ConfigurationError):
        reg.unregister("cleaner", "x")


def test_registry_unknown_component_raises():
    reg = ComponentRegistry()
    with pytest.raises(ConfigurationError):
        reg.create("flush", "never-registered")
    with pytest.raises(ConfigurationError):
        reg.register("flush", "not-callable", 42)


def test_builtin_policies_are_registered():
    # Importing the core modules populated the process-wide registry.
    assert registry.has("flush", "periodic")
    assert registry.has("iosched", "clook")
    assert registry.has("cleaner", "cost-benefit")
    assert registry.has("placement", "stripe")
    assert registry.has("replacement", "arc")
    assert registry.has("layout", "lfs") and registry.has("layout", "ffs")


def test_third_party_flush_policy_plugs_in_without_editing_core():
    class EagerFlushPolicy(FlushPolicy):
        name = "eager-test"

    registry.register("flush", "eager-test", EagerFlushPolicy)
    try:
        # Config validation consults the registry for non-builtin names...
        config = FlushConfig(policy="eager-test")
        # ...and the factory instantiates the third-party class.
        policy = make_flush_policy(config)
        assert isinstance(policy, EagerFlushPolicy)
    finally:
        registry.unregister("flush", "eager-test")
    with pytest.raises(ConfigurationError):
        FlushConfig(policy="eager-test")  # gone again


# --------------------------------------------------------------------------- spec


def small_spec(**overrides):
    base = StackSpec(
        cache=CacheConfig(size_bytes=64 * 4 * KB),
        flush=FlushConfig(policy="periodic", nvram_bytes=8 * 4 * KB),
        layout=LayoutConfig(segment_size=16 * 4 * KB),
        host=HostConfig(num_disks=1, num_buses=1),
        seed=3,
    )
    from dataclasses import replace

    return replace(base, **overrides)


def test_stack_spec_round_trips_through_dict():
    for spec in (
        small_spec(),
        small_spec(array=ArrayConfig(volumes=3, buses=1, disks_per_bus=3)),
        StackSpec.from_config(sun4_280_config(scale=0.002)),
    ):
        data = spec.to_dict()
        assert StackSpec.from_dict(data) == spec
        # And the dict is plain (JSON-safe) all the way down.
        import json

        assert StackSpec.from_dict(json.loads(json.dumps(data))) == spec


def test_stack_spec_from_dict_rejects_unknown_keys():
    with pytest.raises(ConfigurationError):
        StackSpec.from_dict({"cace": {}})
    with pytest.raises(ConfigurationError):
        StackSpec.from_dict({"cache": {"size_byte": 1}})
    with pytest.raises(ConfigurationError):
        StackSpec.from_dict({"cache": 42})


def test_stack_spec_config_round_trip():
    config = small_test_config(seed=11)
    spec = StackSpec.from_config(config)
    assert spec.seed == 11
    again = spec.to_config(report_interval=config.report_interval)
    assert again == config


def test_stack_spec_shape_helpers():
    spec = small_spec(array=ArrayConfig(volumes=2, buses=1, disks_per_bus=2))
    assert spec.num_volumes == 2
    assert spec.num_disks == 2
    assert list(spec.disks_of_volume(1)) == [1]
    single = small_spec()
    assert single.num_volumes == 1
    assert list(single.disks_of_volume(0)) == [0]
    with pytest.raises(ConfigurationError):
        single.disks_of_volume(1)


# --------------------------------------------------------------------------- build_stack


def test_build_stack_single_volume_both_worlds():
    spec = small_spec()
    sim = build_stack(spec, SimulatedBinding())
    online = build_stack(spec, OnlineBinding(size_bytes=16 * MB))
    # Same component classes either side of the cut-and-paste line...
    assert type(sim.cache) is type(online.cache) is BlockCache
    assert type(sim.flush_policy) is type(online.flush_policy)
    assert type(sim.layout) is type(online.layout) is LogStructuredLayout
    assert type(sim.cleaner) is type(online.cleaner)
    # ...with only the helpers differing.
    assert sim.cache.with_data is False and online.cache.with_data is True
    assert sim.buses and not online.buses
    assert len(sim.drivers) == len(online.drivers) == 1


def test_build_stack_array_builds_sharded_components():
    spec = small_spec(array=ArrayConfig(volumes=3, buses=2, disks_per_bus=2))
    stack = build_stack(spec, SimulatedBinding())
    assert isinstance(stack.cache, ShardedCache) and len(stack.cache.shards) == 3
    assert isinstance(stack.layout, RoutedLayout)
    assert isinstance(stack.volume, VolumeSet) and len(stack.volume) == 3
    assert isinstance(stack.flush_policy, ShardedFlushPolicy)
    assert isinstance(stack.cleaner, CleanerSet) and len(stack.cleaner) == 3
    assert stack.placement is not None and stack.placement.name == "hash"
    assert len(stack.drivers) == 4 and len(stack.buses) == 2


def test_simulator_with_prebuilt_stack_derives_its_config():
    spec = small_spec(array=ArrayConfig(volumes=2, buses=1, disks_per_bus=2))
    stack = build_stack(spec, SimulatedBinding())
    simulator = PatsySimulator(stack=stack)
    # The run config comes from the stack's spec, not small_test_config().
    assert StackSpec.from_config(simulator.config) == spec
    assert simulator.cache is stack.cache
    # A config describing a *different* stack is rejected, not blended.
    with pytest.raises(ConfigurationError):
        PatsySimulator(config=small_test_config(), stack=stack)
    # As is a stack built for the wrong world.
    online = build_stack(spec, OnlineBinding(size_bytes=16 * MB))
    with pytest.raises(ConfigurationError):
        PatsySimulator(stack=online)


def test_pfs_rejects_spec_plus_piecewise_keywords():
    spec = small_spec()
    with pytest.raises(ConfigurationError):
        PegasusFileSystem(spec=spec, cache=CacheConfig(size_bytes=1 * MB))
    with pytest.raises(ConfigurationError):
        PegasusFileSystem(spec=spec, seed=9)
    # The spec-only and piecewise-only forms both still work.
    assert PegasusFileSystem(spec=spec).spec is spec
    assert PegasusFileSystem(seed=9).spec.seed == 9


def test_third_party_replacement_class_registers_directly():
    from repro.core.replacement import LruPolicy, make_replacement_policy

    class MruLikePolicy(LruPolicy):
        name = "mru-test"

    # The registry docstring's pattern: register the class itself.  The
    # factory must only forward the knobs the signature accepts.
    registry.register("replacement", "mru-test", MruLikePolicy)
    try:
        policy = make_replacement_policy("mru-test", 16)
        assert isinstance(policy, MruLikePolicy)
        cache_config = CacheConfig(size_bytes=16 * 4 * KB, replacement="mru-test")
        spec = small_spec(cache=cache_config)
        stack = build_stack(spec, SimulatedBinding())
        assert isinstance(stack.cache.policy, MruLikePolicy)
    finally:
        registry.unregister("replacement", "mru-test")


def test_simulator_from_spec_replays():
    spec = small_spec()
    simulator = PatsySimulator.from_spec(spec, report_interval=60.0)
    assert simulator.config.seed == spec.seed
    from repro.patsy.traces import TraceRecord

    result = simulator.replay(
        [TraceRecord(0.1, 0, "write", "/f", offset=0, size=8 * KB)], trace_name="spec"
    )
    assert result.errors == 0 and result.operations == 1


# --------------------------------------------------------------------------- PFS on an array


def array_spec(volumes=3):
    return StackSpec(
        cache=CacheConfig(size_bytes=192 * 4 * KB),
        flush=FlushConfig(policy="periodic", nvram_bytes=16 * 4 * KB),
        layout=LayoutConfig(segment_size=16 * 4 * KB),
        host=HostConfig(num_disks=1, num_buses=1),
        array=ArrayConfig(volumes=volumes, buses=1, disks_per_bus=volumes),
        seed=5,
    )


def test_pfs_mounts_a_multi_volume_array_spec():
    """The acceptance contract: the on-line world gains the array stack."""
    pfs = PegasusFileSystem(spec=array_spec(volumes=3), size_bytes=24 * MB)
    assert isinstance(pfs.cache, ShardedCache) and len(pfs.cache.shards) == 3
    assert isinstance(pfs.layout, RoutedLayout)
    assert len(pfs.drivers) == 3
    pfs.format()

    # Enough files to land on more than one volume under hash placement.
    pfs.mkdir("/data")
    payloads = {}
    for i in range(12):
        payload = bytes([i]) * (3000 + 251 * i)
        path = f"/data/file{i}.bin"
        payloads[path] = payload
        pfs.write_file(path, payload)

    # read/write/fsync round-trip through the handle interface.
    handle = pfs.open("/data/file3.bin")
    assert pfs.read(handle, 0, 10) == payloads["/data/file3.bin"][:10]
    pfs.write(handle, 0, b"PATCHED!")
    pfs.fsync(handle)
    pfs.close(handle)
    payloads["/data/file3.bin"] = (
        b"PATCHED!" + payloads["/data/file3.bin"][8:]
    )

    for path, payload in payloads.items():
        assert pfs.read_file(path) == payload, path
    assert sorted(pfs.listdir("/data")) == sorted(payloads_to_names(payloads))

    # The data really spread: more than one sub-layout wrote blocks.
    busy = sum(1 for sub in pfs.layout.sublayouts if sub.stats.blocks_written > 0)
    assert busy >= 2
    stats = pfs.statistics()
    assert stats["volumes"] == 3
    assert stats["layout"]["blocks_written"] > 0
    pfs.unmount()


def payloads_to_names(payloads):
    return [path.rsplit("/", 1)[1] for path in payloads]


def test_pfs_sun4_280_spec_mounts():
    """One spec, both worlds: the paper machine's stack mounts on-line."""
    spec = StackSpec.from_config(sun4_280_config(scale=0.002, seed=1))
    pfs = PegasusFileSystem.from_spec(spec, size_bytes=40 * MB)
    assert len(pfs.cache.shards) == 5 and len(pfs.drivers) == 10
    pfs.format()
    pfs.write_file("/hello.txt", b"ten disks, three buses, five volumes")
    assert pfs.read_file("/hello.txt") == b"ten disks, three buses, five volumes"
    pfs.unmount()


# --------------------------------------------------------------------------- experiments


def test_full_hardware_experiment_runs_on_the_sun4_280_array():
    config = experiment_config("ups", memory_scale=0.01, full_hardware=True)
    assert config.array is not None
    assert config.array.total_disks == 10 and config.array.buses == 3
    assert config.array.volumes == 5
    assert config.flush.policy == "ups"
    # Default runs stay on the fast single-disk complement.
    assert experiment_config("ups", memory_scale=0.01).array is None


def test_array_knobs_without_full_hardware_fail_loudly():
    with pytest.raises(ConfigurationError):
        experiment_config("ups", memory_scale=0.01, volumes=2)
    with pytest.raises(ConfigurationError):
        experiment_config("ups", memory_scale=0.01, placement="stripe")


def test_with_array_fluent_api():
    experiment = DelayedWriteExperiment("1a", "write-delay", memory_scale=0.01)
    arrayed = experiment.with_array(volumes=2, placement="stripe")
    assert not experiment.full_hardware and arrayed.full_hardware
    config = arrayed.config()
    assert config.array is not None and config.array.volumes == 2
    assert config.array.placement == "stripe"
    spec = arrayed.spec()
    assert spec.array == config.array


def test_full_hardware_figure_benchmark_replays_on_the_array():
    """The ROADMAP item: a Figure 2-5 cell on the paper's disk complement."""
    experiment = DelayedWriteExperiment(
        "1a", "write-delay", memory_scale=0.01, trace_scale=0.05
    ).with_array()
    result = experiment.run()
    assert result.errors == 0
    assert result.volume_stats  # the run really went through the array
    assert len(result.volume_stats["per_volume"]) == 5


# --------------------------------------------------------------------------- spec diffing


def test_spec_diff_empty_for_identical_specs():
    from repro.assembly import spec_diff

    a = StackSpec.from_config(small_test_config())
    assert spec_diff(a, StackSpec.from_config(small_test_config())) == {}


def test_spec_diff_reports_differing_fields_only():
    from repro.assembly import spec_diff

    a = StackSpec.from_config(small_test_config())
    b_config = small_test_config(seed=7)
    b = StackSpec.from_config(b_config).with_array(
        ArrayConfig(volumes=2, buses=1, disks_per_bus=2)
    )
    from dataclasses import replace

    b = replace(b, cache=replace(b.cache, replacement="arc"))
    delta = spec_diff(a, b)
    assert set(delta) == {"cache", "array", "seed"}
    assert delta["cache"] == {"replacement": ("lru", "arc")}
    assert delta["seed"] == (0, 7)
    # A section present on one side only comes back whole (as dicts).
    a_side, b_side = delta["array"]
    assert a_side is None and b_side["volumes"] == 2
    # Untouched sections never appear.
    assert "flush" not in delta and "layout" not in delta and "host" not in delta


def test_spec_diff_cluster_section_and_experiment_delta():
    from repro.assembly import spec_diff
    from repro.config import ClusterConfig
    from repro.patsy.experiments import format_spec_delta

    a = StackSpec.from_config(small_test_config())
    b = a.with_cluster(ClusterConfig(nodes=3))
    delta = spec_diff(a, b)
    assert "cluster" in delta and delta["cluster"][1]["nodes"] == 3
    # Experiments print manifest deltas through the same helper.
    base = DelayedWriteExperiment(trace_name="1a", policy_name="ups")
    arrayed = base.with_array(volumes=5)
    exp_delta = base.spec_delta(arrayed)
    assert set(exp_delta) <= {"cache", "flush", "host", "array", "cluster"}
    assert "array" in exp_delta
    text = format_spec_delta(exp_delta)
    assert "array" in text
    assert format_spec_delta({}) == "  (identical stacks)"
