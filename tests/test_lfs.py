"""The segmented log-structured layout: log writes, IFILE, checkpoint, cleaning."""

import pytest

from repro.core.blocks import CacheBlock
from repro.core.inode import FileKind, ROOT_INODE_NUMBER
from repro.core.storage.cleaner import CostBenefitCleaner, GreedyCleaner
from repro.core.storage.lfs import LogStructuredLayout
from repro.core.storage.volume import LocalVolume
from repro.errors import StorageError
from repro.pfs.diskfile import MemoryBackedDiskDriver
from repro.units import KB, MB
from tests.conftest import run


def make_layout(scheduler, simulated=False, disk_mb=8, segment_blocks=8, disks=1):
    drivers = [
        MemoryBackedDiskDriver(scheduler, size_bytes=disk_mb * MB, name=f"d{i}")
        for i in range(disks)
    ]
    volume = LocalVolume(drivers, block_size=4 * KB)
    layout = LogStructuredLayout(
        scheduler, volume, block_size=4 * KB, segment_blocks=segment_blocks, simulated=simulated
    )
    run(scheduler, layout.format)
    run(scheduler, layout.mount)
    return layout


def data_block(payload=b"", with_data=True):
    block = CacheBlock(0, 4 * KB, with_data=with_data)
    if with_data and payload:
        block.data[: len(payload)] = payload
    return block


def test_geometry(scheduler):
    layout = make_layout(scheduler, segment_blocks=8)
    assert layout.num_segments >= 2
    assert layout.free_segment_count <= layout.num_segments
    assert layout.segment_of(layout.segment_start(0)) == 0
    assert layout.segment_of(0) == -1  # the superblock is outside any segment


def test_allocate_inode_numbers_increase(scheduler):
    layout = make_layout(scheduler)
    first = layout.allocate_inode(FileKind.REGULAR)
    second = layout.allocate_inode(FileKind.DIRECTORY)
    assert first.number == ROOT_INODE_NUMBER
    assert second.number == first.number + 1
    assert set(layout.known_inode_numbers()) >= {first.number, second.number}


def test_write_and_read_inode_roundtrip(scheduler):
    layout = make_layout(scheduler)
    inode = layout.allocate_inode(FileKind.REGULAR)
    inode.size = 12345
    run(scheduler, layout.write_inode, inode)
    assert inode.number in layout.inode_map
    # Force a re-read from disk.
    layout._inode_objects.clear()
    loaded = run(scheduler, layout.read_inode, inode.number)
    assert loaded.size == 12345
    assert loaded.kind is FileKind.REGULAR


def test_read_unknown_inode_raises(scheduler):
    layout = make_layout(scheduler)
    with pytest.raises(StorageError):
        run(scheduler, layout.read_inode, 999)


def test_write_file_blocks_appends_to_log(scheduler):
    layout = make_layout(scheduler)
    inode = layout.allocate_inode(FileKind.REGULAR)
    blocks = [(0, data_block(b"zero")), (1, data_block(b"one"))]
    run(scheduler, layout.write_file_blocks, inode, blocks)
    assert inode.get_block_address(0) is not None
    assert inode.get_block_address(1) == inode.get_block_address(0) + 1
    used_segment = layout.segment_of(inode.get_block_address(0))
    assert layout.segment_usage[used_segment] >= 2


def test_file_block_roundtrip_real_data(scheduler):
    layout = make_layout(scheduler)
    inode = layout.allocate_inode(FileKind.REGULAR)
    run(scheduler, layout.write_file_blocks, inode, [(0, data_block(b"payload-0"))])
    target = data_block()
    found = run(scheduler, layout.read_file_block, inode, 0, target)
    assert found is True
    assert bytes(target.data[:9]) == b"payload-0"


def test_hole_read_returns_false_for_real_layout(scheduler):
    layout = make_layout(scheduler, simulated=False)
    inode = layout.allocate_inode(FileKind.REGULAR)
    assert run(scheduler, layout.read_file_block, inode, 5, data_block()) is False


def test_simulated_layout_synthesizes_addresses(scheduler):
    layout = make_layout(scheduler, simulated=True)
    inode = layout.allocate_inode(FileKind.REGULAR)
    block = CacheBlock(0, 4 * KB, with_data=False)
    found = run(scheduler, layout.read_file_block, inode, 3, block)
    assert found is True
    assert layout.stats.synthesized_addresses == 1
    # The synthesised address is stable across repeated reads.
    address = layout.synthesize_address(inode.number, 3)
    assert layout.synthesize_address(inode.number, 3) == address


def test_overwrite_kills_old_blocks(scheduler):
    layout = make_layout(scheduler)
    inode = layout.allocate_inode(FileKind.REGULAR)
    run(scheduler, layout.write_file_blocks, inode, [(0, data_block(b"v1"))])
    first_address = inode.get_block_address(0)
    assert sum(layout.segment_usage.values()) == 1
    run(scheduler, layout.write_file_blocks, inode, [(0, data_block(b"v2"))])
    # The log never overwrites in place: the block moved and the old copy died.
    assert inode.get_block_address(0) != first_address
    assert sum(layout.segment_usage.values()) == 1


def test_release_blocks_frees_segment_usage(scheduler):
    layout = make_layout(scheduler)
    inode = layout.allocate_inode(FileKind.REGULAR)
    run(scheduler, layout.write_file_blocks, inode, [(i, data_block(b"x")) for i in range(3)])
    segment = layout.segment_of(inode.get_block_address(0))
    run(scheduler, layout.release_blocks, inode, 0)
    assert inode.block_count == 0
    assert layout.segment_usage[segment] == 0


def test_segment_rollover(scheduler):
    layout = make_layout(scheduler, segment_blocks=8)
    inode = layout.allocate_inode(FileKind.REGULAR)
    blocks = [(i, data_block(bytes([i]))) for i in range(20)]
    run(scheduler, layout.write_file_blocks, inode, blocks)
    segments_used = {layout.segment_of(addr) for addr in inode.block_map.values()}
    assert len(segments_used) >= 3


def test_checkpoint_and_remount_restores_state(scheduler):
    layout = make_layout(scheduler, segment_blocks=8)
    inode = layout.allocate_inode(FileKind.REGULAR)
    inode.size = 3 * 4 * KB
    run(scheduler, layout.write_file_blocks, inode, [(i, data_block(b"abc")) for i in range(3)])
    run(scheduler, layout.write_inode, inode)
    run(scheduler, layout.checkpoint)

    # A fresh layout object over the same volume must see the same metadata.
    reloaded = LogStructuredLayout(
        scheduler, layout.volume, block_size=4 * KB, segment_blocks=8, simulated=False
    )
    run(scheduler, reloaded.mount)
    assert inode.number in reloaded.inode_map
    loaded = run(scheduler, reloaded.read_inode, inode.number)
    assert loaded.size == inode.size
    assert loaded.block_map == inode.block_map


def test_mount_rejects_mismatched_block_size(scheduler):
    layout = make_layout(scheduler)
    run(scheduler, layout.checkpoint)
    other = LogStructuredLayout(
        scheduler, layout.volume, block_size=4 * KB, segment_blocks=8, simulated=False
    )
    other.block_size = 8 * KB  # simulate misconfiguration after construction
    with pytest.raises(StorageError):
        run(scheduler, other.mount)


def test_clean_segment_copies_live_blocks(scheduler):
    layout = make_layout(scheduler, segment_blocks=8)
    inode = layout.allocate_inode(FileKind.REGULAR)
    # Fill one segment, then overwrite half the blocks so the segment is half dead.
    run(scheduler, layout.write_file_blocks, inode, [(i, data_block(b"old")) for i in range(6)])
    victim_segment = layout.segment_of(inode.get_block_address(0))
    run(scheduler, layout.write_file_blocks, inode, [(i, data_block(b"new")) for i in range(3)])
    free_before = layout.free_segment_count
    copied, examined = run(scheduler, layout.clean_segment, victim_segment)
    assert examined >= copied >= 1
    assert victim_segment in layout.free_segments
    assert layout.free_segment_count >= free_before
    # All live block addresses moved out of the cleaned segment.
    assert all(layout.segment_of(addr) != victim_segment for addr in inode.block_map.values())


def test_segment_infos_exclude_free_and_active(scheduler):
    layout = make_layout(scheduler)
    infos = layout.segment_infos()
    indices = {info.index for info in infos}
    assert layout._active_segment not in indices
    for segment in layout.free_segments:
        assert segment not in indices


def test_cleaner_policies_choose_sensibly(scheduler):
    layout = make_layout(scheduler, segment_blocks=8)
    inode = layout.allocate_inode(FileKind.REGULAR)
    run(scheduler, layout.write_file_blocks, inode, [(i, data_block(b"d")) for i in range(14)])
    # Kill most of the first segment.
    run(scheduler, layout.write_file_blocks, inode, [(i, data_block(b"n")) for i in range(6)])
    infos = layout.segment_infos()
    greedy_choice = GreedyCleaner().choose(infos, now=scheduler.now)
    cb_choice = CostBenefitCleaner().choose(infos, now=scheduler.now)
    assert greedy_choice is not None and cb_choice is not None
    assert greedy_choice.live_blocks == min(info.live_blocks for info in infos)


def test_multi_disk_segments_do_not_cross_disks(scheduler):
    layout = make_layout(scheduler, disks=2, disk_mb=4, segment_blocks=8)
    for segment in range(layout.num_segments):
        start = layout.segment_start(segment)
        end = start + layout.segment_blocks - 1
        assert layout.volume.disk_of(start) == layout.volume.disk_of(end)
