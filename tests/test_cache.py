"""The block cache: allocation, LRU lists, dirty tracking, flushing."""

import pytest

from repro.config import CacheConfig
from repro.core.blocks import BlockState
from repro.core.cache import BlockCache
from repro.core.scheduler import Delay
from repro.errors import CacheError
from tests.conftest import run


def make_cache(scheduler, blocks=8, with_data=False, replacement="lru"):
    config = CacheConfig(size_bytes=blocks * 4096, block_size=4096, replacement=replacement)
    cache = BlockCache(scheduler, config, with_data=with_data)
    written = []

    def writeback(file_id, block_nos):
        written.append((file_id, tuple(block_nos)))
        yield Delay(0.005)

    cache.writeback = writeback
    cache.written_log = written
    return cache


def test_geometry(scheduler):
    cache = make_cache(scheduler, blocks=8)
    assert cache.num_blocks == 8
    assert cache.free_count == 8
    assert cache.clean_count == 0
    assert cache.dirty_count == 0


def test_allocate_and_lookup(scheduler):
    cache = make_cache(scheduler)

    def body():
        block = yield from cache.allocate(1, 0)
        return block

    block = run(scheduler, body)
    assert block.state is BlockState.CLEAN
    assert cache.contains(1, 0)
    assert cache.lookup(1, 0) is block
    assert cache.lookup(1, 99) is None
    assert cache.stats.hits == 1 and cache.stats.misses == 1


def test_double_allocate_rejected(scheduler):
    cache = make_cache(scheduler)

    def body():
        yield from cache.allocate(1, 0)
        yield from cache.allocate(1, 0)

    with pytest.raises(CacheError):
        run(scheduler, body)


def test_mark_dirty_and_clean(scheduler):
    cache = make_cache(scheduler)

    def body():
        block = yield from cache.allocate(1, 0)
        yield from cache.mark_dirty(block)
        return block

    block = run(scheduler, body)
    assert block.is_dirty
    assert cache.dirty_count == 1
    assert cache.stats.blocks_dirtied == 1
    cache.mark_clean(block)
    assert block.is_clean
    assert cache.dirty_count == 0
    assert cache.clean_count == 1


def test_eviction_reuses_lru_clean_block(scheduler):
    cache = make_cache(scheduler, blocks=4)

    def fill():
        for i in range(4):
            yield from cache.allocate(1, i)
        # Touch block 0 so block 1 becomes the LRU candidate.
        cache.lookup(1, 0)
        yield from cache.allocate(1, 100)

    run(scheduler, fill)
    assert cache.stats.evictions == 1
    assert cache.contains(1, 0)
    assert not cache.contains(1, 1)
    assert cache.contains(1, 100)


def test_allocation_forces_flush_when_all_dirty(scheduler):
    cache = make_cache(scheduler, blocks=4)

    def body():
        for i in range(4):
            block = yield from cache.allocate(9, i)
            yield from cache.mark_dirty(block)
        # Cache is now entirely dirty; this allocation must trigger a flush.
        yield from cache.allocate(9, 100)

    run(scheduler, body)
    assert cache.written_log, "a writeback should have happened"
    assert cache.stats.blocks_written >= 1
    assert cache.contains(9, 100)


def test_flush_file_groups_blocks(scheduler):
    cache = make_cache(scheduler, blocks=8)

    def body():
        for i in range(3):
            block = yield from cache.allocate(5, i)
            yield from cache.mark_dirty(block)
        other = yield from cache.allocate(6, 0)
        yield from cache.mark_dirty(other)
        flushed = yield from cache.flush_file(5)
        return flushed

    assert run(scheduler, body) == 3
    assert cache.written_log == [(5, (0, 1, 2))]
    assert cache.dirty_count == 1  # file 6 still dirty


def test_flush_all(scheduler):
    cache = make_cache(scheduler)

    def body():
        for file_id in (1, 2):
            for i in range(2):
                block = yield from cache.allocate(file_id, i)
                yield from cache.mark_dirty(block)
        return (yield from cache.flush_all())

    assert run(scheduler, body) == 4
    assert cache.dirty_count == 0


def test_flush_oldest_whole_file(scheduler):
    cache = make_cache(scheduler)

    def body():
        a = yield from cache.allocate(1, 0)
        yield from cache.mark_dirty(a)
        yield Delay(1.0)
        b = yield from cache.allocate(2, 0)
        yield from cache.mark_dirty(b)
        return (yield from cache.flush_oldest(whole_file=True))

    assert run(scheduler, body) == 1
    assert cache.written_log == [(1, (0,))]


def test_invalidate_file_counts_write_savings(scheduler):
    cache = make_cache(scheduler)

    def body():
        for i in range(3):
            block = yield from cache.allocate(7, i)
            yield from cache.mark_dirty(block)
        clean = yield from cache.allocate(7, 3)
        return cache.invalidate_file(7)

    clean_dropped, dirty_dropped = run(scheduler, body)
    assert dirty_dropped == 3
    assert clean_dropped == 1
    assert cache.stats.dirty_blocks_discarded == 3
    assert cache.free_count == cache.num_blocks


def test_invalidate_file_partial_truncate(scheduler):
    cache = make_cache(scheduler)

    def body():
        for i in range(4):
            block = yield from cache.allocate(7, i)
            yield from cache.mark_dirty(block)
        return cache.invalidate_file(7, from_block=2)

    _, dirty_dropped = run(scheduler, body)
    assert dirty_dropped == 2
    assert cache.contains(7, 0) and cache.contains(7, 1)
    assert not cache.contains(7, 2)


def test_nvram_dirty_limit_stalls_and_drains(scheduler):
    cache = make_cache(scheduler, blocks=8)
    cache.dirty_limit_bytes = 2 * 4096  # at most two dirty blocks
    cache.drain_whole_file = False

    def body():
        for i in range(4):
            block = yield from cache.allocate(3, i)
            yield from cache.mark_dirty(block)
        return cache.dirty_count

    dirty = run(scheduler, body)
    assert dirty <= 2
    assert cache.stats.nvram_stalls >= 1
    assert cache.stats.blocks_written >= 2


def test_oldest_dirty_age(scheduler):
    cache = make_cache(scheduler)

    def body():
        block = yield from cache.allocate(1, 0)
        yield from cache.mark_dirty(block)
        yield Delay(12.0)
        return cache.oldest_dirty_age()

    assert run(scheduler, body) == pytest.approx(12.0)
    assert cache.oldest_dirty() is not None


def test_dirty_files_ordering(scheduler):
    cache = make_cache(scheduler)

    def body():
        for file_id in (4, 2, 9):
            block = yield from cache.allocate(file_id, 0)
            yield from cache.mark_dirty(block)
            yield Delay(0.1)

    run(scheduler, body)
    assert cache.dirty_files() == [4, 2, 9]


def test_writeback_requires_registration(scheduler):
    config = CacheConfig(size_bytes=4 * 4096)
    cache = BlockCache(scheduler, config, with_data=False)

    def body():
        block = yield from cache.allocate(1, 0)
        yield from cache.mark_dirty(block)
        yield from cache.flush_block(block)

    with pytest.raises(CacheError):
        run(scheduler, body)


def test_has_allocatable_slot(scheduler):
    cache = make_cache(scheduler, blocks=2)
    assert cache.has_allocatable_slot()

    def body():
        for i in range(2):
            block = yield from cache.allocate(1, i)
            yield from cache.mark_dirty(block)

    run(scheduler, body)
    assert not cache.has_allocatable_slot()


def test_stats_snapshot_keys(scheduler):
    cache = make_cache(scheduler)
    snapshot = cache.stats.snapshot()
    for key in ("hits", "misses", "hit_rate", "blocks_written", "dirty_blocks_discarded"):
        assert key in snapshot


def test_hit_rate(scheduler):
    cache = make_cache(scheduler)

    def body():
        yield from cache.allocate(1, 0)

    run(scheduler, body)
    cache.lookup(1, 0)
    cache.lookup(1, 1)
    assert cache.stats.hit_rate == pytest.approx(0.5)
