"""In-core inodes."""

import pytest

from repro.core.inode import FileKind, Inode, ROOT_INODE_NUMBER
from repro.errors import InvalidArgument


def test_root_inode_number():
    assert ROOT_INODE_NUMBER == 2


def test_block_map_operations():
    inode = Inode(number=5, kind=FileKind.REGULAR)
    inode.set_block_address(0, 100)
    inode.set_block_address(3, 400)
    assert inode.get_block_address(0) == 100
    assert inode.get_block_address(1) is None
    assert inode.block_count == 2
    assert list(inode.mapped_blocks()) == [(0, 100), (3, 400)]


def test_negative_block_number_rejected():
    inode = Inode(number=5, kind=FileKind.REGULAR)
    with pytest.raises(InvalidArgument):
        inode.set_block_address(-1, 10)


def test_drop_blocks_from():
    inode = Inode(number=5, kind=FileKind.REGULAR, block_map={0: 10, 1: 11, 2: 12, 5: 15})
    freed = inode.drop_blocks_from(2)
    assert sorted(freed) == [12, 15]
    assert inode.block_map == {0: 10, 1: 11}


def test_kind_helpers():
    assert Inode(1, FileKind.DIRECTORY).is_directory
    assert Inode(1, FileKind.REGULAR).is_regular
    assert Inode(1, FileKind.SYMLINK).is_symlink
    assert not Inode(1, FileKind.REGULAR).is_directory


def test_blocks_for_size():
    inode = Inode(1, FileKind.REGULAR, size=4097)
    assert inode.blocks_for_size(4096) == 2
    inode.size = 0
    assert inode.blocks_for_size(4096) == 0


def test_stat_dictionary():
    inode = Inode(7, FileKind.DIRECTORY, size=42, nlink=3)
    stat = inode.stat()
    assert stat["ino"] == 7
    assert stat["kind"] == "directory"
    assert stat["size"] == 42
    assert stat["nlink"] == 3
    assert "mtime" in stat and "generation" in stat


def test_touch_times():
    inode = Inode(1, FileKind.REGULAR)
    inode.touch_mtime(10.0)
    inode.touch_atime(11.0)
    assert inode.mtime == 10.0 and inode.ctime == 10.0
    assert inode.atime == 11.0
