"""The abstract disk driver and the PFS memory/file backed drivers."""

import pytest

from repro.core.driver import IOKind
from repro.core.iosched import make_io_scheduler
from repro.errors import DiskAddressError, DiskError
from repro.pfs.diskfile import FileBackedDiskDriver, MemoryBackedDiskDriver
from repro.units import MB, SECTOR_SIZE
from tests.conftest import run


def test_memory_driver_roundtrip(scheduler):
    driver = MemoryBackedDiskDriver(scheduler, size_bytes=1 * MB)

    def body():
        yield from driver.write(10, 2, b"A" * (2 * SECTOR_SIZE))
        request = yield from driver.read(10, 2)
        return bytes(request.data)

    assert run(scheduler, body) == b"A" * (2 * SECTOR_SIZE)
    assert driver.stats.reads == 1
    assert driver.stats.writes == 1
    assert driver.stats.sectors_written == 2


def test_out_of_bounds_rejected(scheduler):
    driver = MemoryBackedDiskDriver(scheduler, size_bytes=1 * MB)

    def body():
        yield from driver.read(driver.num_sectors, 1)

    with pytest.raises(DiskAddressError):
        run(scheduler, body)


def test_zero_length_request_rejected(scheduler):
    driver = MemoryBackedDiskDriver(scheduler, size_bytes=1 * MB)

    def body():
        yield from driver.read(0, 0)

    with pytest.raises(DiskError):
        run(scheduler, body)


def test_write_without_payload_zero_fills(scheduler):
    driver = MemoryBackedDiskDriver(scheduler, size_bytes=1 * MB)

    def body():
        yield from driver.write(0, 1, b"X" * SECTOR_SIZE)
        yield from driver.write(0, 1, None)
        request = yield from driver.read(0, 1)
        return bytes(request.data)

    assert run(scheduler, body) == bytes(SECTOR_SIZE)


def test_service_time_model(scheduler):
    driver = MemoryBackedDiskDriver(
        scheduler, size_bytes=1 * MB, fixed_latency=0.01, per_byte_time=0.0
    )

    def body():
        yield from driver.read(0, 1)
        yield from driver.read(5, 1)

    run(scheduler, body)
    assert scheduler.now == pytest.approx(0.02)
    assert driver.stats.mean_response_time() >= 0.01


def test_request_timing_fields(scheduler):
    driver = MemoryBackedDiskDriver(scheduler, size_bytes=1 * MB, fixed_latency=0.005)

    def body():
        return (yield from driver.read(0, 4))

    request = run(scheduler, body)
    assert request.kind is IOKind.READ
    assert request.completed_at >= request.dispatched_at >= request.created_at
    assert request.nbytes == 4 * SECTOR_SIZE
    assert request.response_time >= 0.005


def test_queue_statistics_accumulate(scheduler):
    driver = MemoryBackedDiskDriver(scheduler, size_bytes=1 * MB, fixed_latency=0.002)

    def client(start_sector):
        yield from driver.read(start_sector, 1)

    threads = [scheduler.spawn(client, i * 8) for i in range(5)]
    for thread in threads:
        scheduler.run_until_complete(thread)
    assert driver.stats.operations == 5
    assert len(driver.stats.queue_length_samples) == 5


def test_flush_waits_for_outstanding_work(scheduler):
    driver = MemoryBackedDiskDriver(scheduler, size_bytes=1 * MB, fixed_latency=0.01)

    def writer():
        yield from driver.write(0, 1, b"Y" * SECTOR_SIZE)

    def syncer():
        yield from driver.flush()
        return driver.outstanding

    scheduler.spawn(writer)
    assert run(scheduler, syncer) == 0


def test_clook_ordering_observed(scheduler):
    driver = MemoryBackedDiskDriver(
        scheduler,
        size_bytes=1 * MB,
        io_scheduler=make_io_scheduler("clook"),
        fixed_latency=0.01,
    )
    completions = []

    def client(sector):
        yield from driver.read(sector, 1)
        completions.append(sector)

    threads = [scheduler.spawn(client, sector) for sector in (100, 900, 50, 500)]
    for thread in threads:
        scheduler.run_until_complete(thread)
    assert sorted(completions) == [50, 100, 500, 900]
    assert driver.stats.operations == 4


def test_memory_snapshot_restore(scheduler):
    driver = MemoryBackedDiskDriver(scheduler, size_bytes=1 * MB)

    def body():
        yield from driver.write(3, 1, b"Z" * SECTOR_SIZE)

    run(scheduler, body)
    snapshot = driver.snapshot()
    run(scheduler, lambda: (yield from driver.write(3, 1, b"Q" * SECTOR_SIZE)))
    driver.restore(snapshot)

    def read_back():
        request = yield from driver.read(3, 1)
        return bytes(request.data)

    assert run(scheduler, read_back) == b"Z" * SECTOR_SIZE


def test_file_backed_driver_persists(tmp_path, scheduler):
    path = tmp_path / "disk.img"
    driver = FileBackedDiskDriver(scheduler, path, size_bytes=1 * MB)

    def body():
        yield from driver.write(7, 1, b"P" * SECTOR_SIZE)

    run(scheduler, body)
    driver.close()
    assert path.stat().st_size == driver.num_sectors * SECTOR_SIZE

    driver2 = FileBackedDiskDriver(scheduler, path)

    def read_back():
        request = yield from driver2.read(7, 1)
        return bytes(request.data)

    assert run(scheduler, read_back) == b"P" * SECTOR_SIZE
    driver2.close()


def test_file_backed_driver_requires_size_for_new_file(tmp_path, scheduler):
    with pytest.raises(DiskError):
        FileBackedDiskDriver(scheduler, tmp_path / "missing.img")


def test_too_small_disk_rejected(scheduler):
    with pytest.raises(DiskError):
        MemoryBackedDiskDriver(scheduler, size_bytes=100)
