"""The Patsy simulator and the delayed-write experiments (integration level)."""

import pytest

from repro.config import FlushConfig, small_test_config
from repro.errors import ConfigurationError, TraceError
from repro.patsy.experiments import (
    EXPERIMENT_POLICIES,
    experiment_config,
    run_policy_comparison,
)
from repro.patsy.simulator import PatsySimulator
from repro.patsy.synthetic import sprite_like_trace
from repro.patsy.traces import TraceRecord
from repro.patsy.workload import WorkloadProfile, generate_workload
from repro.units import KB


def tiny_trace():
    return [
        TraceRecord(0.0, 0, "mkdir", "/work"),
        TraceRecord(0.1, 0, "open", "/work/a"),
        TraceRecord(0.2, 0, "write", "/work/a", offset=0, size=8 * KB),
        TraceRecord(0.4, 0, "read", "/work/a", offset=0, size=8 * KB),
        TraceRecord(0.5, 0, "close", "/work/a"),
        TraceRecord(0.6, 1, "stat", "/existing/old.dat"),
        TraceRecord(0.8, 1, "read", "/existing/old.dat", offset=0, size=16 * KB),
        TraceRecord(1.0, 1, "unlink", "/work/a"),
    ]


def test_simulator_replays_tiny_trace():
    simulator = PatsySimulator(small_test_config())
    result = simulator.replay(tiny_trace(), trace_name="tiny")
    assert result.operations == len(tiny_trace())
    assert result.errors == 0
    assert result.trace_name == "tiny"
    assert result.simulated_time >= 1.0
    assert result.mean_latency > 0.0
    assert result.cache_stats["lookups"] > 0


def test_simulator_rejects_empty_trace():
    simulator = PatsySimulator(small_test_config())
    with pytest.raises(TraceError):
        simulator.replay([])


def test_simulator_materializes_pre_existing_files():
    simulator = PatsySimulator(small_test_config())
    simulator.replay(tiny_trace())
    assert simulator.client.stats.files_materialized >= 1


def test_simulator_statistics_plugins():
    simulator = PatsySimulator(small_test_config())
    result = simulator.replay(tiny_trace())
    assert set(result.plugin_reports) == {"disk-queues", "rotational-delay", "cache", "bus"}
    disks = result.plugin_reports["rotational-delay"]["disks"]
    assert sum(d["requests"] for d in disks.values()) > 0
    buses = result.plugin_reports["bus"]["buses"]
    assert sum(b["transfers"] for b in buses.values()) > 0


def test_simulator_interval_reports():
    config = small_test_config()
    simulator = PatsySimulator(config)
    profile = WorkloadProfile(name="interval", duration=180.0, num_clients=2, initial_files=10)
    result = simulator.replay(generate_workload(profile, seed=1))
    # 60-second reporting interval over three minutes: at least two intervals.
    assert len(result.latency.interval_reports) >= 2


def test_simulator_max_time_cutoff():
    simulator = PatsySimulator(small_test_config())
    records = [TraceRecord(float(i), 0, "stat", "/f") for i in range(20)]
    result = simulator.replay(records, max_time=5.0)
    assert result.operations <= 7


def test_read_latency_anatomy():
    """Cache hits complete well under 2 ms; cold reads pay seek + rotation."""
    simulator = PatsySimulator(small_test_config())
    records = []
    for i in range(20):
        records.append(TraceRecord(i * 1.0, 0, "read", "/cold/file%d" % i, offset=0, size=4 * KB))
    # Re-read the same files: now they are cache hits.
    for i in range(20):
        records.append(TraceRecord(40.0 + i * 1.0, 0, "read", "/cold/file%d" % i, offset=0, size=4 * KB))
    result = simulator.replay(records)
    latencies = result.latency.latencies("read")
    cold, warm = latencies[:20], latencies[20:]
    assert sum(warm) / len(warm) < 0.002, "cached reads must complete within ~2ms"
    assert sum(cold) / len(cold) > 0.004, "cold reads must pay disk time"


def test_experiment_config_policies():
    for name in EXPERIMENT_POLICIES:
        config = experiment_config(name)
        assert config.flush.policy in {"periodic", "ups", "nvram"}
    with pytest.raises(ConfigurationError):
        experiment_config("write-through")


def test_policy_comparison_reproduces_paper_ordering():
    """The Section 5.1 shape on a scaled-down trace 1a:

    * UPS writes nothing and saves the most dirty data,
    * the 30-second policy writes the most among the delay policies,
    * UPS mean latency is no worse than the 30-second baseline,
    * whole-file NVRAM flushing is no worse than partial-file flushing.
    """
    results = run_policy_comparison("1a", trace_scale=0.4, seed=2)
    ups = results["ups"]
    write_delay = results["write-delay"]
    whole = results["nvram-whole-file"]
    partial = results["nvram-partial-file"]

    assert ups.blocks_written_to_disk == 0
    assert write_delay.blocks_written_to_disk > 0
    assert ups.write_savings_blocks >= write_delay.write_savings_blocks
    assert ups.mean_latency <= write_delay.mean_latency * 1.10
    assert whole.mean_latency <= partial.mean_latency * 1.05
    for result in results.values():
        assert result.errors == 0
        assert result.operations > 100


def test_nvram_bottleneck_on_write_heavy_trace():
    """On the 1b-like trace the NVRAM fills and forces extra writes."""
    results = run_policy_comparison(
        "1b", policies=["write-delay", "nvram-whole-file"], trace_scale=0.3, seed=1
    )
    nvram = results["nvram-whole-file"]
    write_delay = results["write-delay"]
    assert nvram.cache_stats["nvram_stalls"] > 0
    assert nvram.blocks_written_to_disk >= write_delay.blocks_written_to_disk * 0.8


def test_ffs_layout_simulation():
    config = small_test_config()
    config = config.__class__(
        cache=config.cache,
        flush=config.flush,
        layout=config.layout.__class__(kind="ffs"),
        host=config.host,
        seed=0,
        report_interval=config.report_interval,
    )
    simulator = PatsySimulator(config)
    result = simulator.replay(tiny_trace())
    assert result.errors == 0


def test_same_trace_different_policies_same_operation_count():
    trace = sprite_like_trace("6", scale=0.2, seed=3)
    results = run_policy_comparison("6", policies=["ups", "write-delay"], trace_scale=0.2, seed=3)
    counts = {r.operations for r in results.values()}
    assert len(counts) == 1
    assert counts.pop() == len(trace)
