"""Adaptive replacement policies: ghost lists, ARC adaptation, CLOCK hand.

Covers the behaviours that make ARC/2Q/CLOCK more than recency lists:

* ghost-list eviction and promotion (identities remembered after eviction),
* ARC's online adaptation of the T1 target under scan-then-reuse traffic,
* CLOCK hand wraparound and second chances,
* determinism of trace generation and policy decisions under a fixed seed
  (including independence from ``PYTHONHASHSEED``).
"""

import os
import random
import subprocess
import sys

from repro.core.blocks import BlockId, BlockState
from repro.core.cache import BlockCache
from repro.config import CacheConfig
from repro.core.replacement import ArcPolicy, ClockPolicy, TwoQPolicy
from repro.patsy.workload import WorkloadProfile, generate_workload
from tests.conftest import run
from tests.test_replacement import MiniCache, make_block


# ---------------------------------------------------------------- ARC ghosts


def arc_with_t2(capacity=4):
    """An ARC MiniCache where block 1 is proven-hot (lives in T2)."""
    cache = MiniCache("arc", capacity)
    cache.access(1)
    cache.access(1)  # second reference promotes 1 to T2
    return cache


def test_arc_eviction_from_t1_creates_b1_ghost():
    cache = arc_with_t2()
    for fid in (2, 3, 4):
        cache.access(fid)  # fill T1
    cache.access(5)  # evicts T1's LRU (2); its identity is remembered
    assert cache.evicted == [BlockId(2, 0)]
    b1, b2 = cache.policy.ghost_lists()
    assert BlockId(2, 0) in b1
    assert b2 == []


def test_arc_b1_ghost_hit_promotes_to_t2_and_grows_target():
    cache = arc_with_t2()
    for fid in (2, 3, 4):
        cache.access(fid)
    cache.access(5)  # 2 -> B1 ghost
    assert cache.policy.p == 0.0
    cache.access(2)  # ghost hit: straight to T2, target grows
    assert cache.policy.stats.ghost_hits == 1
    assert cache.policy.stats.policy_adaptations == 1
    assert cache.policy.p > 0.0
    assert cache.policy.snapshot()["t2"] == 2  # {1, 2}


def test_arc_b2_ghost_hit_shrinks_target():
    cache = arc_with_t2()
    for fid in (2, 3, 4):
        cache.access(fid)
    cache.access(5)  # 2 -> B1
    cache.access(2)  # B1 ghost hit; p grows
    cache.access(6)
    cache.access(7)
    cache.access(4)  # second B1 ghost hit; p grows again
    p_before = cache.policy.p
    assert p_before >= 2.0
    cache.access(8)  # now |T1| <= p: the victim comes from T2 -> B2 ghost
    b2 = cache.policy.ghost_lists()[1]
    assert b2, "eviction from T2 must leave a B2 ghost"
    cache.access(b2[0].file_id)  # B2 ghost hit -> p shrinks back
    assert cache.policy.p < p_before
    assert cache.policy.stats.ghost_hits >= 3


def test_arc_ghost_lists_are_bounded():
    capacity = 8
    cache = MiniCache("arc", capacity)
    for fid in range(200):
        cache.access(fid)
    snap = cache.policy.snapshot()
    assert snap["t1"] + snap["b1_ghosts"] <= capacity
    total = snap["t1"] + snap["t2"] + snap["b1_ghosts"] + snap["b2_ghosts"]
    assert total <= 2 * capacity


def test_arc_scan_resistance_beats_lru():
    """Scan-then-reuse: an established hot set keeps being re-referenced
    while one-shot scans stream through.  ARC holds the hot set in T2 and
    lets scans churn T1; LRU evicts the hot set on every scan burst.
    """

    def drive(policy_name):
        cache = MiniCache(policy_name, 16, rng=random.Random(5))
        hot = list(range(8))
        for _ in range(2):  # establish the hot set (second pass re-references)
            for fid in hot:
                cache.access(fid)
        scan = iter(range(1000, 8000))
        for round_no in range(150):
            for fid in hot:
                cache.access(fid)
            for _ in range(16):  # one-shot scan traffic exceeding the cache
                cache.access(next(scan))
        return cache.hits / (cache.hits + cache.misses)

    arc_rate = drive("arc")
    lru_rate = drive("lru")
    assert arc_rate > lru_rate + 0.15
    assert arc_rate > 0.30


def test_arc_adapts_under_shifting_traffic():
    cache = MiniCache("arc", 8)
    # Recency phase: a drifting window favours T1.
    for fid in range(60):
        cache.access(fid)
        cache.access(fid + 1)
    # Frequency phase: a tight reused set plus scan noise favours T2.
    for round_no in range(40):
        for fid in (500, 501, 502):
            cache.access(fid)
        cache.access(1000 + round_no)
    assert cache.policy.stats.policy_adaptations > 0


# ---------------------------------------------------------------- 2Q


def test_twoq_first_touch_stays_in_a1in_fifo():
    cache = MiniCache("2q", 8)
    for fid in range(2):
        cache.access(fid)
    # Re-references inside A1in are correlated and must not promote.
    cache.access(0)
    snap = cache.policy.snapshot()
    assert snap["a1in"] == 2
    assert snap["am"] == 0


def test_twoq_ghost_hit_promotes_to_am():
    cache = MiniCache("2q", 4, twoq_in_fraction=0.25, twoq_out_fraction=1.0)
    for fid in range(1, 7):
        cache.access(fid)  # fills A1in past k_in; oldest spill to A1out
    assert cache.policy.snapshot()["a1out_ghosts"] > 0
    ghost_key = cache.evicted[0].file_id
    before = cache.policy.stats.ghost_hits
    cache.access(ghost_key)  # reuse after A1in: the real-reuse signal
    assert cache.policy.stats.ghost_hits == before + 1
    assert cache.policy.snapshot()["am"] == 1


def test_twoq_a1out_is_bounded():
    cache = MiniCache("2q", 4, twoq_out_fraction=0.5)
    for fid in range(100):
        cache.access(fid)
    assert cache.policy.snapshot()["a1out_ghosts"] <= cache.policy.k_out


# ---------------------------------------------------------------- CLOCK


def test_clock_second_chance_and_wraparound():
    policy = ClockPolicy(4)
    blocks = [make_block(i, 0) for i in range(4)]
    for block in blocks:
        policy.on_insert(block)
    for block in blocks:
        policy.on_access(block)  # every reference bit set
    # The sweep must clear all four bits (one full lap) and then evict on
    # wraparound; afterwards the surviving bits stay cleared.
    victim = policy.victim()
    assert victim in blocks
    assert policy.snapshot()["referenced"] == 0


def test_clock_spares_referenced_blocks():
    cache = MiniCache("clock", 4)
    for fid in range(4):
        cache.access(fid)
    cache.access(0)  # 0 gets a second chance
    cache.access(4)
    assert BlockId(0, 0) not in cache.evicted
    assert 0 in cache.keys()


def test_clock_hand_survives_eviction_of_hand_block():
    policy = ClockPolicy(2)
    a, b = make_block(1, 0), make_block(2, 0)
    policy.on_insert(a)
    policy.on_insert(b)
    hand_before = policy.hand_key
    hand_block = a if hand_before == a.block_id else b
    other = b if hand_block is a else a
    policy.on_evict(hand_block)
    assert policy.hand_key == other.block_id
    policy.on_evict(other)
    assert policy.hand_key is None
    assert policy.victim() is None


def test_clock_peek_does_not_clear_bits():
    policy = ClockPolicy(3)
    blocks = [make_block(i, 0) for i in range(3)]
    for block in blocks:
        policy.on_insert(block)
        policy.on_access(block)
    assert policy.victim(peek=True) is not None
    assert policy.snapshot()["referenced"] == 3  # untouched


# ---------------------------------------------------------------- through the cache


def make_cache(scheduler, blocks=8, replacement="arc"):
    config = CacheConfig(size_bytes=blocks * 4096, block_size=4096, replacement=replacement)
    return BlockCache(scheduler, config, with_data=False)


def test_cache_surfaces_ghost_hits_in_statistics(scheduler):
    cache = make_cache(scheduler, blocks=4, replacement="arc")

    def body():
        yield from cache.allocate(1, 0)
        cache.lookup(1, 0)  # promote 1 to T2
        for fid in (2, 3, 4):
            yield from cache.allocate(fid, 0)
        yield from cache.allocate(5, 0)  # evicts 2 -> B1 ghost
        yield from cache.allocate(2, 0)  # ghost hit
        return cache.stats.snapshot()

    snapshot = run(scheduler, body)
    assert snapshot["ghost_hits"] == 1
    assert snapshot["policy_adaptations"] == 1
    assert snapshot["victim_scan_steps"] >= 2
    assert cache.policy.snapshot()["t2"] == 2


def test_cache_dirty_blocks_are_never_victims(scheduler):
    cache = make_cache(scheduler, blocks=4, replacement="clock")
    written = []

    def writeback(file_id, block_nos):
        written.append((file_id, tuple(block_nos)))
        yield from ()

    cache.writeback = writeback

    def body():
        dirty = yield from cache.allocate(1, 0)
        yield from cache.mark_dirty(dirty)
        for i in range(3):
            yield from cache.allocate(2, i)
        yield from cache.allocate(3, 0)  # must evict a clean file-2 block
        return dirty

    dirty = run(scheduler, body)
    assert dirty.is_dirty
    assert cache.contains(1, 0)
    assert cache.contains(3, 0)


def test_invalidate_file_purges_ghosts(scheduler):
    """Truncate/delete destroys data; ghosts of previously evicted blocks
    of that file must not turn a later rewrite into a spurious ghost hit."""
    cache = make_cache(scheduler, blocks=4, replacement="arc")

    def body():
        yield from cache.allocate(1, 0)
        cache.lookup(1, 0)  # T2
        for fid in (2, 3, 4):
            yield from cache.allocate(fid, 0)
        yield from cache.allocate(5, 0)  # evicts (2, 0) -> B1 ghost
        assert BlockId(2, 0) in cache.policy.ghost_lists()[0]
        cache.invalidate_file(2)  # file 2's data destroyed
        yield from cache.allocate(2, 0)  # new data, same identity
        return cache.stats.snapshot()

    snapshot = run(scheduler, body)
    assert snapshot["ghost_hits"] == 0
    assert snapshot["policy_adaptations"] == 0


def test_cache_invalidate_file_keeps_policy_consistent(scheduler):
    cache = make_cache(scheduler, blocks=8, replacement="2q")

    def body():
        for i in range(4):
            yield from cache.allocate(5, i)
        yield from cache.allocate(6, 0)
        cache.invalidate_file(5)
        # Allocation keeps working and residency matches the index.
        for i in range(6):
            yield from cache.allocate(7, i)

    run(scheduler, body)
    assert cache.policy.resident_count == cache.cached_count


# ---------------------------------------------------------------- determinism


def test_workload_generation_is_repeatable():
    profile = WorkloadProfile(name="determinism", duration=30.0, num_clients=3)
    first = generate_workload(profile, seed=11)
    second = generate_workload(profile, seed=11)
    assert first == second
    assert first != generate_workload(profile, seed=12)


def test_workload_generation_independent_of_hash_seed():
    """Trace generation must not depend on PYTHONHASHSEED (it once did,
    via hash(profile.name), making every run a different experiment)."""
    script = (
        "from repro.patsy.workload import WorkloadProfile, generate_workload\n"
        "records = generate_workload(WorkloadProfile(name='hash-seed-check',"
        " duration=20.0, num_clients=2), seed=3)\n"
        "print(len(records), sum(r.size for r in records),"
        " round(records[-1].timestamp, 6))\n"
    )
    outputs = set()
    for hash_seed in ("1", "2"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            check=True,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        outputs.add(result.stdout.strip())
    assert len(outputs) == 1, f"trace depends on PYTHONHASHSEED: {outputs}"


def test_random_policy_is_deterministic_under_fixed_seed():
    def evictions(seed):
        cache = MiniCache("random", 8, rng=random.Random(seed))
        for fid in range(64):
            cache.access(fid % 24)
        return cache.evicted

    assert evictions(9) == evictions(9)


def test_scan_workload_profile_patterns_are_deterministic():
    for pattern in ("hotset", "zipf", "scan", "loop"):
        profile = WorkloadProfile(
            name=f"pattern-{pattern}", duration=20.0, num_clients=2, access_pattern=pattern
        )
        assert generate_workload(profile, seed=4) == generate_workload(profile, seed=4)
