"""The data mover: real copies vs. simulated time charges."""

import pytest

from repro.core.blocks import CacheBlock
from repro.core.datamover import DataMover
from repro.errors import InvalidArgument
from tests.conftest import run


def test_copy_in_and_out_real_data(scheduler):
    mover = DataMover(charge_time=False)
    block = CacheBlock(0, 4096, with_data=True)

    def body():
        yield from mover.copy_in(block, 10, b"hello")
        return (yield from mover.copy_out(block, 10, 5))

    assert run(scheduler, body) == b"hello"
    assert mover.bytes_copied == 10
    assert scheduler.now == 0.0  # no time charged


def test_copy_charges_time_in_simulator(scheduler):
    mover = DataMover(charge_time=True, bandwidth=1024)
    block = CacheBlock(0, 4096, with_data=False)

    def body():
        yield from mover.copy_in(block, 0, b"x" * 512)
        yield from mover.copy_out(block, 0, 512)

    run(scheduler, body)
    assert scheduler.now == pytest.approx(1.0)


def test_copy_out_simulated_returns_zero_filler(scheduler):
    mover = DataMover(charge_time=True, bandwidth=1e9)
    block = CacheBlock(0, 4096, with_data=False)

    def body():
        return (yield from mover.copy_out(block, 0, 100))

    assert run(scheduler, body) == bytes(100)


def test_charge_only(scheduler):
    mover = DataMover(charge_time=True, bandwidth=2048)

    def body():
        yield from mover.charge(1024)

    run(scheduler, body)
    assert scheduler.now == pytest.approx(0.5)
    assert mover.bytes_copied == 1024


def test_copy_in_none_is_noop(scheduler):
    mover = DataMover(charge_time=True)
    block = CacheBlock(0, 4096, with_data=False)

    def body():
        return (yield from mover.copy_in(block, 0, None))

    assert run(scheduler, body) == 0
    assert scheduler.now == 0.0


def test_bounds_checking(scheduler):
    mover = DataMover(charge_time=False)
    block = CacheBlock(0, 64, with_data=True)

    def copy_in_oob():
        yield from mover.copy_in(block, 60, b"xxxxxxxx")

    def copy_out_oob():
        yield from mover.copy_out(block, 0, 100)

    with pytest.raises(InvalidArgument):
        run(scheduler, copy_in_oob)
    with pytest.raises(InvalidArgument):
        run(scheduler, copy_out_oob)


def test_rejects_bad_bandwidth():
    with pytest.raises(InvalidArgument):
        DataMover(charge_time=True, bandwidth=0)
