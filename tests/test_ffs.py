"""The FFS-like write-in-place layout and the block allocator."""

import pytest

from repro.core.blocks import CacheBlock
from repro.core.inode import FileKind
from repro.core.storage.allocator import BlockAllocator
from repro.core.storage.ffs import FfsLikeLayout
from repro.core.storage.volume import LocalVolume
from repro.errors import NoSpaceLeft, StorageError
from repro.pfs.diskfile import MemoryBackedDiskDriver
from repro.units import KB, MB
from tests.conftest import run


def make_layout(scheduler, simulated=False, disk_mb=8, max_inodes=32):
    driver = MemoryBackedDiskDriver(scheduler, size_bytes=disk_mb * MB)
    volume = LocalVolume([driver], block_size=4 * KB)
    layout = FfsLikeLayout(
        scheduler, volume, block_size=4 * KB, max_inodes=max_inodes, simulated=simulated
    )
    run(scheduler, layout.format)
    run(scheduler, layout.mount)
    return layout


def data_block(payload=b""):
    block = CacheBlock(0, 4 * KB, with_data=True)
    if payload:
        block.data[: len(payload)] = payload
    return block


# --------------------------------------------------------------------------- allocator


def test_allocator_basic():
    allocator = BlockAllocator(first_block=10, num_blocks=4)
    addresses = [allocator.allocate() for _ in range(4)]
    assert sorted(addresses) == [10, 11, 12, 13]
    assert allocator.free_count == 0
    with pytest.raises(NoSpaceLeft):
        allocator.allocate()
    allocator.free(11)
    assert allocator.allocate() == 11


def test_allocator_locality_hint():
    allocator = BlockAllocator(first_block=0, num_blocks=100)
    first = allocator.allocate(near=50)
    second = allocator.allocate(near=first)
    assert abs(second - first) <= 2


def test_allocator_double_free_rejected():
    allocator = BlockAllocator(0, 10)
    address = allocator.allocate()
    allocator.free(address)
    with pytest.raises(StorageError):
        allocator.free(address)


def test_allocator_range_checking():
    allocator = BlockAllocator(100, 10)
    with pytest.raises(StorageError):
        allocator.free(50)
    allocator.allocate_at(105)
    assert allocator.is_allocated(105)


# --------------------------------------------------------------------------- layout


def test_ffs_inode_roundtrip(scheduler):
    layout = make_layout(scheduler)
    inode = layout.allocate_inode(FileKind.REGULAR)
    inode.size = 777
    run(scheduler, layout.write_inode, inode)
    layout._inode_objects.clear()
    loaded = run(scheduler, layout.read_inode, inode.number)
    assert loaded.size == 777


def test_ffs_write_in_place(scheduler):
    layout = make_layout(scheduler)
    inode = layout.allocate_inode(FileKind.REGULAR)
    run(scheduler, layout.write_file_blocks, inode, [(0, data_block(b"v1"))])
    address = inode.get_block_address(0)
    run(scheduler, layout.write_file_blocks, inode, [(0, data_block(b"v2"))])
    assert inode.get_block_address(0) == address  # update in place, no relocation
    target = data_block()
    run(scheduler, layout.read_file_block, inode, 0, target)
    assert bytes(target.data[:2]) == b"v2"


def test_ffs_free_inode_releases_blocks(scheduler):
    layout = make_layout(scheduler)
    inode = layout.allocate_inode(FileKind.REGULAR)
    run(scheduler, layout.write_file_blocks, inode, [(i, data_block(b"x")) for i in range(3)])
    free_before = layout.free_blocks
    run(scheduler, layout.free_inode, inode)
    assert layout.free_blocks == free_before + 3
    with pytest.raises(StorageError):
        run(scheduler, layout.read_inode, inode.number)


def test_ffs_remount_rebuilds_allocator(scheduler):
    layout = make_layout(scheduler)
    inode = layout.allocate_inode(FileKind.REGULAR)
    run(scheduler, layout.write_file_blocks, inode, [(i, data_block(b"p")) for i in range(4)])
    run(scheduler, layout.write_inode, inode)
    used = layout.allocator.used_count

    reloaded = FfsLikeLayout(
        scheduler, layout.volume, block_size=4 * KB, max_inodes=32, simulated=False
    )
    run(scheduler, reloaded.mount)
    assert reloaded.allocator.used_count == used
    loaded = run(scheduler, reloaded.read_inode, inode.number)
    assert loaded.block_map == inode.block_map


def test_ffs_inode_slot_exhaustion(scheduler):
    layout = make_layout(scheduler, max_inodes=8)
    for _ in range(8):
        layout.allocate_inode(FileKind.REGULAR)
    with pytest.raises(StorageError):
        layout.allocate_inode(FileKind.REGULAR)


def test_ffs_simulated_synthesizes(scheduler):
    layout = make_layout(scheduler, simulated=True)
    inode = layout.allocate_inode(FileKind.REGULAR)
    block = CacheBlock(0, 4 * KB, with_data=False)
    assert run(scheduler, layout.read_file_block, inode, 9, block) is True
    assert layout.stats.synthesized_addresses == 1
