"""Shared pytest fixtures and helpers.

Most framework operations are generators driven by the cooperative
scheduler; the ``run`` helper spawns a generator as a thread and drives the
scheduler until it completes, which is how tests call into the framework.
"""

from __future__ import annotations

import pytest

from repro.config import CacheConfig, FlushConfig, LayoutConfig
from repro.core.cache import BlockCache
from repro.core.clock import VirtualClock
from repro.core.datamover import DataMover
from repro.core.filesystem import FileSystem
from repro.core.scheduler import FifoSchedulingPolicy, Scheduler
from repro.core.storage.lfs import LogStructuredLayout
from repro.core.storage.volume import LocalVolume
from repro.pfs.diskfile import MemoryBackedDiskDriver
from repro.pfs.filesystem import PegasusFileSystem
from repro.units import KB, MB


def run(scheduler: Scheduler, target, *args, **kwargs):
    """Run one framework generator to completion on ``scheduler``."""
    thread = scheduler.spawn(target, *args, **kwargs)
    return scheduler.run_until_complete(thread)


@pytest.fixture
def scheduler() -> Scheduler:
    """A deterministic virtual-time scheduler."""
    return Scheduler(clock=VirtualClock(), seed=7)


@pytest.fixture
def fifo_scheduler() -> Scheduler:
    """A fully deterministic FIFO scheduler (no random interleaving)."""
    return Scheduler(clock=VirtualClock(), seed=7, policy=FifoSchedulingPolicy())


def make_memory_filesystem(
    scheduler: Scheduler,
    cache_blocks: int = 64,
    disk_mb: int = 16,
    flush: FlushConfig | None = None,
    segment_blocks: int = 16,
) -> FileSystem:
    """A small real (byte-moving) file system on a memory disk."""
    driver = MemoryBackedDiskDriver(scheduler, size_bytes=disk_mb * MB)
    volume = LocalVolume([driver], block_size=4 * KB)
    layout = LogStructuredLayout(
        scheduler, volume, block_size=4 * KB, segment_blocks=segment_blocks, simulated=False
    )
    cache = BlockCache(scheduler, CacheConfig(size_bytes=cache_blocks * 4 * KB), with_data=True)
    datamover = DataMover(charge_time=False)
    from repro.core.flush import make_flush_policy

    policy = make_flush_policy(flush if flush is not None else FlushConfig(policy="periodic"))
    return FileSystem(scheduler, cache, layout, datamover, flush_policy=policy)


@pytest.fixture
def memory_fs(scheduler) -> FileSystem:
    fs = make_memory_filesystem(scheduler)
    run(scheduler, fs.mount, True)
    return fs


@pytest.fixture
def pfs() -> PegasusFileSystem:
    """A formatted in-memory Pegasus file system."""
    fs = PegasusFileSystem(
        size_bytes=16 * MB,
        cache=CacheConfig(size_bytes=1 * MB),
        layout=LayoutConfig(segment_size=64 * KB),
    )
    fs.format()
    return fs
