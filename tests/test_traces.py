"""Trace records, readers/writers, grouping and the Sprite/Coda parsers."""

import io

import pytest

from repro.errors import TraceError
from repro.patsy.coda import load_coda_trace
from repro.patsy.sprite import SpriteTraceReader, load_sprite_trace
from repro.patsy.traces import (
    TraceReader,
    TraceRecord,
    TraceWriter,
    group_operations,
    load_trace,
    operation_mix,
    records_by_client,
    save_trace,
    synthesize_missing_times,
    trace_duration,
)


def sample_records():
    return [
        TraceRecord(0.0, 0, "open", "/a"),
        TraceRecord(0.5, 0, "read", "/a", offset=0, size=4096),
        TraceRecord(1.0, 0, "close", "/a"),
        TraceRecord(0.2, 1, "stat", "/b"),
        TraceRecord(2.0, 1, "unlink", "/b"),
    ]


def test_record_validation():
    with pytest.raises(TraceError):
        TraceRecord(0.0, 0, "frobnicate", "/x")
    with pytest.raises(TraceError):
        TraceRecord(-1.0, 0, "read", "/x")
    with pytest.raises(TraceError):
        TraceRecord(0.0, 0, "read", "/x", size=-1)


def test_record_shifted():
    record = TraceRecord(1.0, 0, "read", "/x", size=10)
    shifted = record.shifted(2.5)
    assert shifted.timestamp == 3.5 and shifted.size == 10


def test_writer_reader_roundtrip(tmp_path):
    path = tmp_path / "trace.tsv"
    records = sample_records()
    assert save_trace(records, path) == len(records)
    loaded = load_trace(path)
    assert loaded == records


def test_reader_from_stream():
    stream = io.StringIO()
    TraceWriter(stream).write_all(sample_records())
    stream.seek(0)
    assert list(TraceReader(stream)) == sample_records()


def test_reader_rejects_malformed_lines():
    with pytest.raises(TraceError):
        TraceReader.parse_line("not\tenough\tfields", 1)


def test_records_by_client_sorted():
    streams = records_by_client(sample_records())
    assert set(streams) == {0, 1}
    assert [r.timestamp for r in streams[1]] == [0.2, 2.0]


def test_trace_duration_and_mix():
    records = sample_records()
    assert trace_duration(records) == pytest.approx(2.0)
    mix = operation_mix(records)
    assert mix["read"] == 1 and mix["open"] == 1
    assert trace_duration([]) == 0.0


def test_group_operations_brackets_open_close():
    groups = group_operations(sample_records())
    session = [g for g in groups if g.path == "/a"][0]
    assert [r.op for r in session.records] == ["open", "read", "close"]
    singles = [g for g in groups if g.path == "/b"]
    assert len(singles) == 2


def test_synthesize_missing_times_spreads_operations():
    records = [
        TraceRecord(10.0, 0, "open", "/f"),
        TraceRecord(10.0, 0, "read", "/f", size=100),
        TraceRecord(10.0, 0, "read", "/f", offset=100, size=100),
        TraceRecord(13.0, 0, "close", "/f"),
    ]
    fixed = synthesize_missing_times(records)
    reads = [r for r in fixed if r.op == "read"]
    assert reads[0].timestamp == pytest.approx(11.0)
    assert reads[1].timestamp == pytest.approx(12.0)


SPRITE_TEXT = """
# a tiny sprite-like trace
0.000 host1.100 open /usr/data/file1 0 0
0.100 host1.100 read /usr/data/file1 0 8192
0.200 host1.100 close /usr/data/file1
0.500 host2.200 create /tmp/scratch
0.600 host2.200 write /tmp/scratch 0 4096
0.700 host2.200 remove /tmp/scratch
1.000 host1.100 rename /usr/data/file1 /usr/data/file2
"""


def test_sprite_reader_parses_ops_and_clients():
    records = list(SpriteTraceReader(io.StringIO(SPRITE_TEXT)))
    assert len(records) == 7
    assert records[0].op == "open"
    assert records[1].size == 8192
    assert records[5].op == "unlink"  # "remove" mapped
    assert records[6].op == "rename" and records[6].path2 == "/usr/data/file2"
    assert records[0].client != records[3].client


def test_sprite_reader_rejects_unknown_op():
    with pytest.raises(TraceError):
        list(SpriteTraceReader(io.StringIO("0.0 c1 teleport /x")))


def test_load_sprite_trace_from_file(tmp_path):
    path = tmp_path / "sprite.trace"
    path.write_text(SPRITE_TEXT)
    records = load_sprite_trace(path)
    assert len(records) == 7


CODA_TEXT = """
0.000 clientA vol7 open /doc/report 0 0
0.250 clientA vol7 read /doc/report 0 1024
0.500 clientA vol7 close /doc/report
"""


def test_coda_reader_folds_volume_into_path():
    records = load_coda_trace(io.StringIO(CODA_TEXT))
    assert records[0].path == "/vol.vol7/doc/report"
    assert records[1].size == 1024


def test_coda_reader_requires_volume_field():
    with pytest.raises(TraceError):
        load_coda_trace(io.StringIO("0.0 c open /x\n"))
