"""Configuration objects and their validation."""

import pytest

from repro.config import (
    CacheConfig,
    FlushConfig,
    HostConfig,
    LayoutConfig,
    SimulationConfig,
    small_test_config,
    sprite_server_config,
)
from repro.errors import ConfigurationError
from repro.units import MB


def test_cache_config_defaults_and_blocks():
    config = CacheConfig(size_bytes=8 * MB)
    assert config.num_blocks == 2048
    assert config.replacement == "lru"


def test_cache_config_validation():
    with pytest.raises(ConfigurationError):
        CacheConfig(size_bytes=100, block_size=4096)
    with pytest.raises(ConfigurationError):
        CacheConfig(replacement="mru")
    with pytest.raises(ConfigurationError):
        CacheConfig(block_size=0)


def test_flush_config_validation():
    with pytest.raises(ConfigurationError):
        FlushConfig(policy="never")
    with pytest.raises(ConfigurationError):
        FlushConfig(nvram_bytes=0)
    assert FlushConfig(policy="nvram", whole_file=False).whole_file is False


def test_layout_config_validation():
    with pytest.raises(ConfigurationError):
        LayoutConfig(kind="zfs")
    with pytest.raises(ConfigurationError):
        LayoutConfig(cleaner_low_water=0.9, cleaner_high_water=0.5)
    with pytest.raises(ConfigurationError):
        LayoutConfig(cleaner_policy="oracular")


def test_host_config_validation_and_bus_mapping():
    host = HostConfig(num_disks=10, num_buses=3)
    assert host.bus_for_disk(0) == 0
    assert host.bus_for_disk(4) == 1
    assert host.bus_for_disk(5) == 2
    with pytest.raises(ConfigurationError):
        HostConfig(num_disks=1, num_buses=2)
    with pytest.raises(ConfigurationError):
        HostConfig(io_scheduler="random")


def test_simulation_config_with_flush():
    config = small_test_config()
    replaced = config.with_flush(FlushConfig(policy="ups"))
    assert replaced.flush.policy == "ups"
    assert replaced.cache == config.cache


def test_sprite_server_config_scaling():
    full = sprite_server_config(scale=1.0)
    assert full.cache.size_bytes == 128 * MB
    assert full.flush.nvram_bytes == 4 * MB
    assert full.host.num_disks == 10 and full.host.num_buses == 3
    half = sprite_server_config(scale=0.5)
    assert half.cache.size_bytes == 64 * MB
    with pytest.raises(ConfigurationError):
        sprite_server_config(scale=0.0)


def test_small_test_config_is_small():
    config = small_test_config()
    assert config.cache.num_blocks == 64
    assert config.host.num_disks == 1
