"""The Pegasus File-System facade: an on-line instantiation storing real data."""

import pytest

from repro.config import CacheConfig, FlushConfig, LayoutConfig
from repro.errors import FileNotFound
from repro.pfs.filesystem import PegasusFileSystem
from repro.units import KB, MB


def test_basic_write_read(pfs):
    pfs.mkdir("/home")
    pfs.write_file("/home/hello.txt", b"hello, cut-and-paste world")
    assert pfs.read_file("/home/hello.txt") == b"hello, cut-and-paste world"
    assert pfs.listdir("/home") == ["hello.txt"]
    assert pfs.stat("/home/hello.txt")["size"] == 26


def test_large_file_spans_blocks(pfs):
    payload = bytes(range(256)) * 64 * 5  # 80 KB
    pfs.write_file("/big.bin", payload)
    assert pfs.read_file("/big.bin") == payload


def test_overwrite_and_append(pfs):
    pfs.write_file("/log.txt", b"first line\n")
    pfs.append("/log.txt", b"second line\n")
    assert pfs.read_file("/log.txt") == b"first line\nsecond line\n"
    pfs.write_file("/log.txt", b"XXXXX", offset=0)
    assert pfs.read_file("/log.txt")[:5] == b"XXXXX"


def test_delete_and_exists(pfs):
    pfs.write_file("/temp", b"temp data")
    assert pfs.exists("/temp")
    pfs.delete("/temp")
    assert not pfs.exists("/temp")
    with pytest.raises(FileNotFound):
        pfs.read_file("/temp", 0, 1)


def test_makedirs_and_nested_paths(pfs):
    pfs.makedirs("/a/b/c")
    pfs.write_file("/a/b/c/deep.txt", b"deep")
    assert pfs.read_file("/a/b/c/deep.txt") == b"deep"
    assert pfs.listdir("/a/b") == ["c"]


def test_rename_and_symlink(pfs):
    pfs.write_file("/orig", b"content")
    pfs.rename("/orig", "/renamed")
    assert pfs.read_file("/renamed") == b"content"
    pfs.symlink("/renamed", "/alias")
    assert pfs.readlink("/alias") == "/renamed"
    assert pfs.read_file("/alias") == b"content"


def test_truncate(pfs):
    pfs.write_file("/t", b"Z" * 9000)
    pfs.truncate("/t", 1000)
    assert pfs.stat("/t")["size"] == 1000
    assert pfs.read_file("/t") == b"Z" * 1000


def test_handle_interface(pfs):
    handle = pfs.open("/via-handle", create=True)
    pfs.write(handle, 0, b"handle data")
    assert pfs.read(handle, 0, 11) == b"handle data"
    assert pfs.fsync(handle) >= 1
    pfs.close(handle)


def test_sync_flushes_dirty_data(pfs):
    pfs.write_file("/dirty", b"D" * 8192)
    assert pfs.cache.dirty_count > 0
    pfs.sync()
    assert pfs.cache.dirty_count == 0


def test_statistics_report(pfs):
    pfs.write_file("/s", b"stats" * 100)
    pfs.read_file("/s")
    stats = pfs.statistics()
    assert stats["cache"]["blocks_dirtied"] >= 1
    assert stats["layout"]["free_blocks"] > 0
    assert "driver" in stats


def test_persistence_across_remount_memoryless():
    """Unmount writes a checkpoint; a new PFS over the same backing file
    sees the same namespace and data."""
    import tempfile, os

    path = tempfile.mktemp(suffix=".pfsimg")
    try:
        first = PegasusFileSystem(
            backing=path,
            size_bytes=16 * MB,
            cache=CacheConfig(size_bytes=1 * MB),
            layout=LayoutConfig(segment_size=64 * KB),
        )
        first.format()
        first.mkdir("/persist")
        first.write_file("/persist/a.txt", b"A" * 5000)
        first.write_file("/persist/b.txt", b"B" * 3000)
        first.delete("/persist/b.txt")
        first.unmount()
        first.close_backing()

        second = PegasusFileSystem(
            backing=path,
            size_bytes=16 * MB,
            cache=CacheConfig(size_bytes=1 * MB),
            layout=LayoutConfig(segment_size=64 * KB),
        )
        second.mount()
        assert second.listdir("/persist") == ["a.txt"]
        assert second.read_file("/persist/a.txt") == b"A" * 5000
        second.unmount()
        second.close_backing()
    finally:
        if os.path.exists(path):
            os.unlink(path)


def test_ffs_layout_variant():
    pfs = PegasusFileSystem(
        size_bytes=16 * MB,
        cache=CacheConfig(size_bytes=1 * MB),
        layout=LayoutConfig(kind="ffs"),
    )
    pfs.format()
    pfs.write_file("/on-ffs", b"ffs data" * 100)
    assert pfs.read_file("/on-ffs") == b"ffs data" * 100


def test_ups_flush_policy_variant():
    pfs = PegasusFileSystem(
        size_bytes=16 * MB,
        cache=CacheConfig(size_bytes=1 * MB),
        flush=FlushConfig(policy="ups"),
        layout=LayoutConfig(segment_size=64 * KB),
    )
    pfs.format()
    pfs.write_file("/ups-file", b"U" * 4096)
    # No periodic flushing: the data stays dirty until a sync.
    assert pfs.cache.dirty_count >= 1
    pfs.sync()
    assert pfs.cache.dirty_count == 0


def test_multimedia_file_creation(pfs):
    handle = pfs.create_multimedia("/video.mm")
    pfs.write(handle, 0, b"V" * 4096)
    assert pfs.read(handle, 0, 4096) == b"V" * 4096
    pfs.close(handle)
    assert pfs.stat("/video.mm")["kind"] == "multimedia"
