"""Synthetic workload generation and the Sprite trace stand-ins."""

import pytest

from repro.errors import ConfigurationError
from repro.patsy.synthetic import SPRITE_PROFILES, SPRITE_TRACE_NAMES, sprite_like_trace
from repro.patsy.traces import operation_mix, records_by_client, trace_duration
from repro.patsy.workload import SyntheticWorkloadGenerator, WorkloadProfile, generate_workload


def small_profile(**overrides):
    base = dict(
        name="test",
        duration=60.0,
        num_clients=3,
        mean_think_time=1.0,
        read_fraction=0.5,
        initial_files=10,
    )
    base.update(overrides)
    return WorkloadProfile(**base)


def test_generation_is_deterministic():
    profile = small_profile()
    first = generate_workload(profile, seed=3)
    second = generate_workload(profile, seed=3)
    assert first == second
    third = generate_workload(profile, seed=4)
    assert third != first


def test_records_sorted_and_within_duration():
    records = generate_workload(small_profile(), seed=1)
    assert records, "the generator must produce work"
    times = [r.timestamp for r in records]
    assert times == sorted(times)
    assert times[-1] <= 60.0


def test_all_clients_active():
    records = generate_workload(small_profile(), seed=2)
    assert set(records_by_client(records)) == {0, 1, 2}


def test_operation_mix_contains_expected_ops():
    records = generate_workload(small_profile(), seed=5)
    mix = operation_mix(records)
    assert mix.get("open", 0) > 0
    assert mix.get("read", 0) > 0
    assert mix.get("write", 0) > 0
    assert mix.get("close", 0) > 0


def test_overwrite_and_delete_behaviour_present():
    profile = small_profile(
        duration=200.0, read_fraction=0.2, delete_fraction=0.5, overwrite_fraction=0.4,
        rewrite_delay=5.0,
    )
    records = generate_workload(profile, seed=7)
    mix = operation_mix(records)
    assert mix.get("unlink", 0) > 0 or mix.get("truncate", 0) > 0


def test_read_fraction_influences_mix():
    heavy_read = generate_workload(small_profile(read_fraction=0.9, duration=120.0), seed=1)
    heavy_write = generate_workload(small_profile(read_fraction=0.1, duration=120.0), seed=1)
    read_ratio = operation_mix(heavy_read).get("read", 0) / max(len(heavy_read), 1)
    write_ratio = operation_mix(heavy_write).get("write", 0) / max(len(heavy_write), 1)
    assert read_ratio > operation_mix(heavy_write).get("read", 0) / max(len(heavy_write), 1)
    assert write_ratio > operation_mix(heavy_read).get("write", 0) / max(len(heavy_read), 1)


def test_profile_validation():
    with pytest.raises(ConfigurationError):
        WorkloadProfile(duration=-1)
    with pytest.raises(ConfigurationError):
        WorkloadProfile(read_fraction=1.5)


def test_profile_scaled():
    profile = small_profile().scaled(0.5)
    assert profile.duration == pytest.approx(30.0)
    with pytest.raises(ConfigurationError):
        small_profile().scaled(0.0)


def test_sprite_trace_names_have_profiles():
    assert set(SPRITE_TRACE_NAMES) == set(SPRITE_PROFILES)
    assert "1a" in SPRITE_PROFILES and "1b" in SPRITE_PROFILES and "5" in SPRITE_PROFILES


def test_sprite_like_trace_generation_and_scaling():
    full = sprite_like_trace("1a", scale=0.2, seed=0)
    assert full
    assert trace_duration(full) <= SPRITE_PROFILES["1a"].duration * 0.2 + 1.0


def test_sprite_like_trace_unknown_name():
    with pytest.raises(ConfigurationError):
        sprite_like_trace("99")


def test_write_heavy_traces_have_more_write_volume():
    normal = sprite_like_trace("1a", scale=0.2, seed=1)
    heavy = sprite_like_trace("1b", scale=0.2, seed=1)

    def write_bytes(records):
        return sum(r.size for r in records if r.op == "write")

    assert write_bytes(heavy) > write_bytes(normal)


# ---------------------------------------------------------------- access patterns


def read_paths(records):
    seen = []
    for record in records:
        if record.op == "open" and "existing-" in record.path and record.path not in seen:
            seen.append(record.path)
    return seen


def existing_read_counts(records):
    counts = {}
    for record in records:
        if record.op == "read" and "existing-" in record.path:
            counts[record.path] = counts.get(record.path, 0) + 1
    return counts


def test_access_pattern_validation():
    with pytest.raises(ConfigurationError):
        small_profile(access_pattern="belady")
    with pytest.raises(ConfigurationError):
        small_profile(access_pattern="zipf", zipf_alpha=0.0)


def test_zipf_pattern_skews_toward_low_ranks():
    profile = small_profile(
        duration=300.0, read_fraction=0.95, initial_files=40,
        access_pattern="zipf", zipf_alpha=1.1,
    )
    counts = existing_read_counts(generate_workload(profile, seed=5))
    by_index = {int(path.split("existing-")[1][:4]): count for path, count in counts.items()}
    head = sum(count for index, count in by_index.items() if index < 8)
    tail = sum(count for index, count in by_index.items() if index >= 8)
    # Rank 0-7 of 40 files absorb well over half the Zipf(1.1) reads.
    assert head > tail


def test_loop_pattern_cycles_through_population():
    profile = small_profile(
        duration=120.0, num_clients=1, read_fraction=1.0, initial_files=6,
        access_pattern="loop",
    )
    records = generate_workload(profile, seed=2)
    indices = [
        int(r.path.split("existing-")[1][:4]) for r in records if r.op == "open"
    ]
    assert len(indices) > 6
    # A single client visits files in strict cyclic order.
    for position in range(1, len(indices)):
        assert indices[position] == (indices[position - 1] + 1) % 6


def test_scan_pattern_mixes_hot_set_and_sweeps():
    profile = small_profile(
        duration=300.0, read_fraction=0.95, initial_files=30,
        access_pattern="scan", hot_set_size=4, hot_read_fraction=0.5,
    )
    records = generate_workload(profile, seed=3)
    counts = existing_read_counts(records)
    by_index = {int(path.split("existing-")[1][:4]): count for path, count in counts.items()}
    # The sweeps reach far beyond the hot set...
    assert any(index >= profile.hot_set_size for index in by_index)
    # ...while the hot set keeps absorbing repeated reads.
    hot = sum(count for index, count in by_index.items() if index < profile.hot_set_size)
    assert hot > 0
