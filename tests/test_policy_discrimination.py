"""Trace-level replacement-policy discrimination.

PR 1's MiniCache unit tests prove ARC/2Q scan resistance at the policy
level; these tests prove it at *simulator* level, where the paper's full
stack (namespace, directories, flush daemons, disks) runs underneath.  The
workloads are the two classic discriminators:

* **scan bursts against an established hot set** — a small set of files is
  re-read continuously while one-shot sequential sweeps stream through a
  population far larger than the cache.  LRU (and CLOCK) evict the hot set
  on every sweep; ARC parks it in T2 and 2Q in Am, so both hold visibly
  higher hit rates *and* lower mean latencies.
* **a tight loop slightly larger than the cache** — cyclic re-reads over a
  footprint ~1.5x the cache.  This is LRU's textbook worst case: every
  block is evicted just before its reuse, so hit rates collapse for every
  stack-based policy; the test pins that behaviour down as the regime where
  *no* recency policy can win (the reason CLOCK-Pro/LIRS stay on the
  roadmap).

Sessions stat before reading: trace replay only materialises a
pre-existing file's size on a pathless lookup, and an unmaterialised file
reads as empty — without the stat the "reads" would never touch the disk
path at all.
"""

from dataclasses import replace

import pytest

from repro.config import small_test_config
from repro.patsy.simulator import PatsySimulator
from repro.patsy.workload import WorkloadProfile, generate_workload
from repro.units import KB

SEED = 3

SCAN_VS_HOTSET = WorkloadProfile(
    name="scan-vs-hotset",
    duration=400.0,
    num_clients=1,
    read_fraction=1.0,
    stat_fraction=1.0,
    stat_burst=1,
    overwrite_fraction=0.0,
    delete_fraction=0.0,
    access_pattern="scan",
    mean_think_time=0.3,
    intra_op_gap=0.02,
    initial_files=200,
    hot_set_size=6,
    hot_read_fraction=0.4,
    mean_file_size=16 * KB,
    large_file_fraction=0.0,
)

TIGHT_LOOP = WorkloadProfile(
    name="tight-loop",
    duration=300.0,
    num_clients=1,
    read_fraction=1.0,
    stat_fraction=1.0,
    stat_burst=1,
    overwrite_fraction=0.0,
    delete_fraction=0.0,
    access_pattern="loop",
    mean_think_time=0.3,
    intra_op_gap=0.02,
    initial_files=16,
    mean_file_size=32 * KB,
    large_file_fraction=0.0,
)


def run_policy(trace, policy, cache_blocks, seed=SEED):
    base = small_test_config(seed=seed)
    config = replace(
        base,
        cache=replace(base.cache, size_bytes=cache_blocks * 4 * KB, replacement=policy),
    )
    return PatsySimulator(config).replay(trace, trace_name="discrimination")


@pytest.fixture(scope="module")
def scan_results():
    trace = generate_workload(SCAN_VS_HOTSET, seed=SEED)
    return {
        policy: run_policy(trace, policy, cache_blocks=32)
        for policy in ("lru", "clock", "arc", "2q")
    }


def test_scan_bursts_arc_and_2q_beat_lru_on_hit_rate(scan_results):
    hit = {policy: result.cache_stats["hit_rate"] for policy, result in scan_results.items()}
    assert hit["lru"] > 0.05, "the hot set must give even LRU some hits"
    assert hit["arc"] >= hit["lru"] + 0.08, f"ARC must visibly win: {hit}"
    assert hit["2q"] >= hit["lru"] + 0.07, f"2Q must visibly win: {hit}"
    # CLOCK is an LRU approximation: same order of magnitude as LRU, far
    # below the scan-resistant pair.
    assert abs(hit["clock"] - hit["lru"]) < 0.05
    assert hit["arc"] > hit["clock"] and hit["2q"] > hit["clock"]


def test_scan_bursts_hit_rate_wins_show_up_in_latency(scan_results):
    latency = {policy: result.mean_latency for policy, result in scan_results.items()}
    assert latency["arc"] < latency["lru"] * 0.95
    assert latency["2q"] < latency["lru"] * 0.95


def test_scan_bursts_adaptive_machinery_was_exercised(scan_results):
    arc = scan_results["arc"].cache_stats
    assert arc["ghost_hits"] > 0
    assert arc["policy_adaptations"] > 0
    twoq = scan_results["2q"].cache_stats
    assert twoq["ghost_hits"] > 0


def test_tight_loop_defeats_every_stack_policy():
    trace = generate_workload(TIGHT_LOOP, seed=11)
    hit = {
        policy: run_policy(trace, policy, cache_blocks=64, seed=11).cache_stats["hit_rate"]
        for policy in ("lru", "arc", "2q")
    }
    # Footprint ~1.5x the cache, cyclic order: every policy built on
    # recency stacks collapses.  This pins down the regime that motivates
    # the CLOCK-Pro/LIRS roadmap item rather than claiming a winner.
    assert all(rate < 0.05 for rate in hit.values()), hit
