"""Volumes: block address space over one or more drivers."""

import pytest

from repro.core.storage.volume import LocalVolume
from repro.errors import DiskAddressError, StorageError
from repro.pfs.diskfile import MemoryBackedDiskDriver
from repro.units import KB, MB
from tests.conftest import run


def make_volume(scheduler, disks=2, disk_mb=2):
    drivers = [
        MemoryBackedDiskDriver(scheduler, size_bytes=disk_mb * MB, name=f"m{i}")
        for i in range(disks)
    ]
    return LocalVolume(drivers, block_size=4 * KB)


def test_total_blocks(scheduler):
    volume = make_volume(scheduler, disks=2, disk_mb=2)
    assert volume.total_blocks == 2 * (2 * MB // (4 * KB))
    assert volume.num_disks == 2


def test_disk_of_and_locate(scheduler):
    volume = make_volume(scheduler, disks=2, disk_mb=2)
    per_disk = volume.total_blocks // 2
    assert volume.disk_of(0) == 0
    assert volume.disk_of(per_disk - 1) == 0
    assert volume.disk_of(per_disk) == 1
    driver, sector = volume.locate(per_disk)
    assert driver is volume.drivers[1]
    assert sector == 0


def test_blocks_on_disk(scheduler):
    volume = make_volume(scheduler, disks=2, disk_mb=2)
    per_disk = volume.total_blocks // 2
    assert volume.blocks_on_disk(0) == range(0, per_disk)
    assert volume.blocks_on_disk(1) == range(per_disk, 2 * per_disk)


def test_block_roundtrip(scheduler):
    volume = make_volume(scheduler)
    payload = bytes(range(256)) * 16  # 4 KB

    def body():
        yield from volume.write_block(5, payload)
        return (yield from volume.read_block(5))

    assert run(scheduler, body) == payload


def test_run_roundtrip(scheduler):
    volume = make_volume(scheduler)
    payload = b"R" * (3 * 4 * KB)

    def body():
        yield from volume.write_run(10, 3, payload)
        return (yield from volume.read_run(10, 3))

    assert run(scheduler, body) == payload


def test_run_crossing_disk_boundary_rejected(scheduler):
    volume = make_volume(scheduler, disks=2, disk_mb=2)
    per_disk = volume.total_blocks // 2

    def body():
        yield from volume.write_run(per_disk - 1, 2, b"X" * (2 * 4 * KB))

    with pytest.raises(StorageError):
        run(scheduler, body)


def test_out_of_range_rejected(scheduler):
    volume = make_volume(scheduler)

    def body():
        yield from volume.read_block(volume.total_blocks)

    with pytest.raises(DiskAddressError):
        run(scheduler, body)


def test_bad_payload_length_rejected(scheduler):
    volume = make_volume(scheduler)

    def body():
        yield from volume.write_run(0, 2, b"short")

    with pytest.raises(StorageError):
        run(scheduler, body)


def test_volume_needs_drivers():
    with pytest.raises(StorageError):
        LocalVolume([], block_size=4 * KB)


def test_flush(scheduler):
    volume = make_volume(scheduler)

    def body():
        yield from volume.write_block(1, b"F" * 4 * KB)
        yield from volume.flush()

    run(scheduler, body)
    assert all(driver.outstanding == 0 for driver in volume.drivers)
