"""Flush (delayed write) policies: periodic update, UPS, NVRAM."""

import pytest

from repro.config import DAEMON_LOW_WATER_DEFAULTS, FlushConfig
from repro.core.cache import BlockCache
from repro.core.flush import (
    NvramPolicy,
    PeriodicUpdatePolicy,
    WriteSavingPolicy,
    make_flush_policy,
)
from repro.config import CacheConfig
from repro.core.scheduler import Delay
from repro.errors import ConfigurationError
from tests.conftest import run


def make_cache_with_policy(scheduler, flush_config, blocks=16):
    cache = BlockCache(scheduler, CacheConfig(size_bytes=blocks * 4096), with_data=False)
    written = []

    def writeback(file_id, block_nos):
        written.append((file_id, tuple(block_nos)))
        yield Delay(0.002)

    cache.writeback = writeback
    policy = make_flush_policy(flush_config)
    policy.attach(cache, scheduler)
    return cache, policy, written


def dirty_blocks(scheduler, cache, file_id, count):
    def body():
        for i in range(count):
            block = yield from cache.allocate(file_id, i)
            yield from cache.mark_dirty(block)

    run(scheduler, body)


def test_factory_dispatch():
    assert isinstance(make_flush_policy(FlushConfig(policy="periodic")), PeriodicUpdatePolicy)
    assert isinstance(make_flush_policy(FlushConfig(policy="ups")), WriteSavingPolicy)
    assert isinstance(make_flush_policy(FlushConfig(policy="nvram")), NvramPolicy)


def test_flush_config_validation():
    with pytest.raises(ConfigurationError):
        FlushConfig(policy="bogus")
    with pytest.raises(ConfigurationError):
        FlushConfig(update_interval=0)


def test_periodic_policy_flushes_old_dirty_data(scheduler):
    config = FlushConfig(policy="periodic", update_interval=30.0, scan_interval=5.0)
    cache, policy, written = make_cache_with_policy(scheduler, config)
    dirty_blocks(scheduler, cache, file_id=3, count=4)
    # Before 30 seconds nothing is written.
    scheduler.run(until=20.0)
    assert not written
    # After the update interval (plus a scan), the file is flushed.
    scheduler.run(until=40.0)
    assert any(file_id == 3 for file_id, _ in written)
    assert cache.dirty_count == 0


def test_periodic_policy_leaves_young_data_alone(scheduler):
    config = FlushConfig(policy="periodic", update_interval=30.0, scan_interval=5.0)
    cache, policy, written = make_cache_with_policy(scheduler, config)
    dirty_blocks(scheduler, cache, 3, 2)
    scheduler.run(until=25.0)
    assert cache.dirty_count == 2
    assert written == []


def test_ups_policy_never_flushes_without_pressure(scheduler):
    cache, policy, written = make_cache_with_policy(scheduler, FlushConfig(policy="ups"))
    dirty_blocks(scheduler, cache, 3, 4)
    scheduler.run(until=120.0)
    assert written == []
    assert cache.dirty_count == 4


def test_ups_policy_flushes_under_allocation_pressure(scheduler):
    cache, policy, written = make_cache_with_policy(
        scheduler, FlushConfig(policy="ups"), blocks=4
    )
    dirty_blocks(scheduler, cache, 3, 4)

    def allocate_more():
        yield from cache.allocate(4, 0)

    run(scheduler, allocate_more)
    assert written, "allocation pressure must force a flush"
    assert cache.contains(4, 0)


def test_nvram_policy_sets_dirty_limit(scheduler):
    config = FlushConfig(policy="nvram", nvram_bytes=4 * 4096, whole_file=True)
    cache, policy, written = make_cache_with_policy(scheduler, config)
    assert cache.dirty_limit_bytes == 4 * 4096
    assert cache.drain_whole_file is True
    assert cache.flush_whole_file_on_replacement is True


def test_nvram_policy_caps_dirty_data(scheduler):
    config = FlushConfig(policy="nvram", nvram_bytes=4 * 4096, whole_file=False)
    cache, policy, written = make_cache_with_policy(scheduler, config)
    dirty_blocks(scheduler, cache, 5, 10)
    assert cache.dirty_bytes <= 4 * 4096
    assert written, "exceeding the NVRAM must have drained something"


def test_nvram_background_drain_keeps_occupancy_below_limit(scheduler):
    config = FlushConfig(policy="nvram", nvram_bytes=8 * 4096, whole_file=True)
    cache, policy, written = make_cache_with_policy(scheduler, config, blocks=32)
    dirty_blocks(scheduler, cache, 6, 8)  # exactly at the limit
    scheduler.run(until=5.0)
    # The write-behind daemon drains below the high-water mark.
    assert cache.dirty_bytes < 8 * 4096


def test_synchronous_flush_mode(scheduler):
    config = FlushConfig(policy="ups", asynchronous=False)
    cache, policy, written = make_cache_with_policy(scheduler, config, blocks=4)
    assert cache.space_requester is None
    dirty_blocks(scheduler, cache, 3, 4)

    def allocate_more():
        yield from cache.allocate(4, 0)

    run(scheduler, allocate_more)
    assert written
    assert cache.stats.forced_replacement_flushes >= 1


def test_periodic_policy_counts_flushes(scheduler):
    config = FlushConfig(policy="periodic", update_interval=10.0, scan_interval=2.0)
    cache, policy, written = make_cache_with_policy(scheduler, config)
    dirty_blocks(scheduler, cache, 3, 3)
    scheduler.run(until=30.0)
    assert policy.policy_flushes >= 3


def test_daemon_low_water_flushes_ahead_of_demand(scheduler):
    config = FlushConfig(policy="ups", daemon_low_water=0.5)
    cache, policy, written = make_cache_with_policy(scheduler, config, blocks=8)
    dirty_blocks(scheduler, cache, 3, 8)  # fill the cache with dirty data

    def allocate_one():
        yield from cache.allocate(4, 0)

    run(scheduler, allocate_one)
    scheduler.run(until=scheduler.now + 1.0)  # let the daemon finish restocking
    # One wakeup restocked the free pool to the low-water mark, not just the
    # single block the allocation demanded.
    assert policy.daemon_wakeups == 1
    assert policy.flush_ahead_blocks > 0
    assert cache.free_count + cache.clean_count >= 4
    # The next allocations are served from the restocked pool: no new wakeup.
    def allocate_more():
        yield from cache.allocate(4, 1)
        yield from cache.allocate(4, 2)

    run(scheduler, allocate_more)
    assert policy.daemon_wakeups == 1
    stats = policy.stats()
    assert stats["flush_ahead_blocks"] == policy.flush_ahead_blocks
    assert set(stats) == {
        "daemon_wakeups",
        "wakeups_coalesced",
        "policy_flushes",
        "flush_ahead_blocks",
    }


def test_daemon_low_water_default_keeps_demand_only_behaviour(scheduler):
    cache, policy, written = make_cache_with_policy(
        scheduler, FlushConfig(policy="ups"), blocks=8
    )
    dirty_blocks(scheduler, cache, 3, 8)

    def allocate_one():
        yield from cache.allocate(4, 0)

    run(scheduler, allocate_one)
    # Strict on-demand flushing: nothing was written ahead of need.
    assert policy.flush_ahead_blocks == 0


def test_daemon_low_water_validation():
    with pytest.raises(ConfigurationError):
        FlushConfig(daemon_low_water=1.0)
    with pytest.raises(ConfigurationError):
        FlushConfig(daemon_low_water=-0.1)


def test_daemon_low_water_per_policy_defaults():
    # Unset (None) resolves to the documented per-policy defaults: periodic
    # restocks 1/16 of the cache ahead of demand, UPS and NVRAM stay at 0.
    assert FlushConfig(policy="periodic").resolved_daemon_low_water() == DAEMON_LOW_WATER_DEFAULTS["periodic"] > 0
    assert FlushConfig(policy="ups").resolved_daemon_low_water() == 0.0
    assert FlushConfig(policy="nvram").resolved_daemon_low_water() == 0.0
    # An explicit setting always wins over the default.
    assert FlushConfig(policy="periodic", daemon_low_water=0.0).resolved_daemon_low_water() == 0.0
    assert FlushConfig(policy="nvram", daemon_low_water=0.25).resolved_daemon_low_water() == 0.25


def test_ups_default_never_flush_aheads_under_sustained_pressure(scheduler):
    """UPS write saving must stay strictly flush-on-demand: even a long run
    of allocation pressure over a fully dirty cache must never write a
    single block ahead of a real allocation request."""
    cache, policy, written = make_cache_with_policy(
        scheduler, FlushConfig(policy="ups"), blocks=8
    )
    dirty_blocks(scheduler, cache, 3, 8)

    def churn():
        for i in range(12):
            yield from cache.allocate(4 + i, 0)

    run(scheduler, churn)
    scheduler.run(until=scheduler.now + 5.0)
    assert policy.flush_ahead_blocks == 0
    assert written, "demand flushing still happens"


def test_periodic_default_flush_ahead_restocks_the_free_pool(scheduler):
    # The periodic default (1/16 of the cache) restocks beyond the single
    # demanded block, so allocation bursts coalesce into one daemon wakeup.
    config = FlushConfig(policy="periodic", update_interval=1e6, scan_interval=1e5)
    cache, policy, written = make_cache_with_policy(scheduler, config, blocks=32)
    dirty_blocks(scheduler, cache, 3, 32)

    def allocate_one():
        yield from cache.allocate(4, 0)

    run(scheduler, allocate_one)
    scheduler.run(until=scheduler.now + 1.0)
    assert policy.flush_ahead_blocks > 0
    assert cache.free_count + cache.clean_count >= int(32 / 16)
