"""The cluster tier: Volume protocol, network volumes, skew rebalancing.

The contracts pinned here:

* a one-node cluster is byte-identical to the bare array stack (alongside
  the ``ArrayConfig(volumes=1)`` equivalence in ``tests/test_array.py``),
* block I/O to a remote node's volume pays for the network (NIC queueing,
  bandwidth, latency) with charged time,
* migration moves a file's home volume online and reads stay
  byte-identical afterwards (real-bytes world),
* the skew monitor's migration schedule is a pure function of seed and
  workload: same seed + same skew ⇒ the identical schedule.
"""

from dataclasses import replace

import pytest

from repro.assembly.bindings import ClusterBinding, OnlineBinding, SimulatedBinding
from repro.assembly.builder import build_stack
from repro.assembly.spec import StackSpec
from repro.config import (
    ArrayConfig,
    CacheConfig,
    ClusterConfig,
    FlushConfig,
    LayoutConfig,
    cluster_config,
    small_test_config,
)
from repro.core.cluster import ClusterPlacement, Nic, RemoteVolume
from repro.core.cluster.rebalance import ClusterRebalancer
from repro.core.inode import ROOT_INODE_NUMBER
from repro.core.storage.array import HashPlacement, StripedPlacement
from repro.core.storage.volume import LocalVolume, Volume
from repro.errors import ConfigurationError, StorageError
from repro.patsy.simulator import PatsySimulator
from repro.patsy.workload import WorkloadProfile, generate_workload
from repro.pfs.diskfile import MemoryBackedDiskDriver
from repro.units import KB, MB
from tests.conftest import run


# --------------------------------------------------------------------------- config & spec


def test_cluster_config_validation():
    with pytest.raises(ConfigurationError):
        ClusterConfig(nodes=0)
    with pytest.raises(ConfigurationError):
        ClusterConfig(network_bandwidth=0)
    with pytest.raises(ConfigurationError):
        ClusterConfig(imbalance_threshold=0.5)
    with pytest.raises(ConfigurationError):
        ClusterConfig(free_space_low_water=1.5)
    with pytest.raises(ConfigurationError):
        ClusterConfig(rebalance_interval=0)
    with pytest.raises(ConfigurationError):
        ClusterConfig(wal_kind="no-such-wal")
    with pytest.raises(ConfigurationError):
        ClusterConfig(manifest_kind="no-such-manifest")
    with pytest.raises(ConfigurationError):
        ClusterConfig(wal_commit_records=0)
    with pytest.raises(ConfigurationError):
        ClusterConfig(wal_commit_bytes=0)
    with pytest.raises(ConfigurationError):
        ClusterConfig(wal_commit_interval=0)
    with pytest.raises(ConfigurationError):
        ClusterConfig(wal_checkpoint_bytes=0)
    with pytest.raises(ConfigurationError):
        ClusterConfig(metadata_latency=-0.1)
    with pytest.raises(ConfigurationError):
        ClusterConfig(metadata_bandwidth=-1)


def test_spec_cluster_topology_helpers():
    spec = StackSpec(
        array=ArrayConfig(volumes=2, buses=2, disks_per_bus=2),
        cluster=ClusterConfig(nodes=3),
    )
    assert spec.num_nodes == 3
    assert spec.volumes_per_node == 2 and spec.num_volumes == 6
    assert spec.disks_per_node == 4 and spec.num_disks == 12
    assert spec.buses_per_node == 2 and spec.num_buses == 6
    # Volume 3 is node 1's second volume: its disks live in node 1's slice.
    assert spec.node_of_volume(3) == 1
    assert list(spec.disks_of_volume(3)) == [6, 7]
    # Buses never span nodes: disk 5 (node 1, local disk 1) sits on bus 3.
    assert spec.node_of_disk(5) == 1
    assert spec.bus_for_disk(5) == 3
    # Round-trips through the manifest form with the cluster section.
    assert StackSpec.from_dict(spec.to_dict()) == spec


# --------------------------------------------------------------------------- network model


def test_nic_charges_serialisation_and_latency(scheduler):
    nic = Nic(scheduler, bandwidth=1 * MB, latency=0.001, overhead=0.0005)

    def send():
        started = scheduler.now
        yield from nic.send(1 * MB)
        return scheduler.now - started

    elapsed = run(scheduler, send)
    assert elapsed == pytest.approx(0.0005 + 1.0 + 0.001)
    assert nic.messages == 1 and nic.bytes_sent == 1 * MB
    assert nic.busy_time == pytest.approx(1.0005)


def test_nic_queues_concurrent_senders(scheduler):
    nic = Nic(scheduler, bandwidth=1 * MB, latency=0.0, overhead=0.0)
    finish_times = []

    def send():
        yield from nic.send(1 * MB)
        finish_times.append(scheduler.now)

    threads = [scheduler.spawn(send) for _ in range(3)]
    for thread in threads:
        scheduler.run_until_complete(thread)
    # The NIC is a capacity-1 resource: three 1-second messages serialise.
    assert sorted(finish_times) == pytest.approx([1.0, 2.0, 3.0])
    assert nic.utilisation(scheduler.now) == pytest.approx(1.0)


def test_remote_volume_charges_the_network_and_moves_bytes(scheduler):
    driver = MemoryBackedDiskDriver(scheduler, size_bytes=2 * MB)
    local = LocalVolume([driver], block_size=4 * KB)
    front = Nic(scheduler, name="front", bandwidth=10 * MB, latency=0.001, overhead=0.0)
    server = Nic(scheduler, name="server", bandwidth=10 * MB, latency=0.001, overhead=0.0)
    remote = RemoteVolume(local, local_nic=front, remote_nic=server, request_bytes=128)
    assert isinstance(remote, Volume)
    assert remote.total_blocks == local.total_blocks
    payload = bytes(range(256)) * 16  # one 4 KB block

    def body():
        yield from remote.write_block(5, payload)
        started = scheduler.now
        data = yield from remote.read_block(5)
        return data, scheduler.now - started

    data, elapsed = run(scheduler, body)
    assert data == payload
    # A read pays two propagation latencies plus the 4 KB response transfer.
    assert elapsed >= 0.002
    assert remote.remote_reads == 1 and remote.remote_writes == 1
    assert front.messages == 2 and server.messages == 2
    assert remote.bytes_over_wire > 8 * KB  # both payloads crossed the wire


# --------------------------------------------------------------------------- placement tier


def test_cluster_placement_routes_and_flips():
    placement = ClusterPlacement(HashPlacement(6), nodes=3, volumes_per_node=2)
    file_id = ROOT_INODE_NUMBER + 4  # native home: volume 4 (node 2)
    assert placement.volume_of_file(file_id) == 4
    assert placement.node_of_file(file_id) == 2
    assert list(placement.volumes_of_node(1)) == [2, 3]
    placement.flip(file_id, 1)
    assert placement.volume_of_file(file_id) == 1
    assert placement.volume_for_block(file_id, 123) == 1
    assert placement.displaced_files == 1
    # Flipping back to the native home drops the routing entry.
    placement.flip(file_id, 4)
    assert placement.displaced_files == 0
    placement.flip(file_id, 0)
    placement.forget(file_id)
    assert placement.volume_of_file(file_id) == 4
    with pytest.raises(ConfigurationError):
        placement.flip(file_id, 6)


def test_cluster_placement_striped_files_keep_entry_on_native_home():
    placement = ClusterPlacement(StripedPlacement(4, stripe_unit=1), 2, 2)
    file_id = ROOT_INODE_NUMBER + 1
    # Native striping rotates this file over all volumes.
    assert len({placement.volume_for_block(file_id, b) for b in range(4)}) == 4
    placement.flip(file_id, 1)
    # A migrated file is whole-file resident even under a striping policy.
    assert {placement.volume_for_block(file_id, b) for b in range(4)} == {1}
    assert placement.displaced_files == 1


def test_cluster_placement_rejects_mismatched_inner():
    with pytest.raises(ConfigurationError):
        ClusterPlacement(HashPlacement(5), nodes=2, volumes_per_node=2)


# --------------------------------------------------------------------------- build shapes


def cluster_spec(nodes=2, volumes_per_node=1, rebalance=False, **cluster_kwargs):
    base = small_test_config()
    return StackSpec(
        cache=replace(base.cache, size_bytes=128 * 4 * KB),
        flush=base.flush,
        layout=base.layout,
        host=base.host,
        array=ArrayConfig(
            volumes=volumes_per_node, buses=1, disks_per_bus=volumes_per_node
        ),
        cluster=ClusterConfig(nodes=nodes, rebalance=rebalance, **cluster_kwargs),
    )


def test_one_node_cluster_builds_no_network_or_rebalancer():
    stack = build_stack(cluster_spec(nodes=1), SimulatedBinding())
    assert stack.cluster is not None
    assert stack.cluster.nics == []
    assert stack.cluster.rebalancer is None
    assert stack.cluster.nodes[0].nic is None
    assert not stack.cluster.remote_volumes
    assert isinstance(stack.placement, ClusterPlacement)


def test_multi_node_cluster_wraps_remote_volumes():
    stack = build_stack(cluster_spec(nodes=3, rebalance=True), SimulatedBinding())
    topology = stack.cluster
    assert topology is not None and topology.num_nodes == 3
    assert len(topology.nics) == 3
    assert topology.rebalancer is not None
    # Node 0 is local; every other node's volume crossed into a RemoteVolume.
    assert set(topology.remote_volumes) == {1, 2}
    assert isinstance(stack.volume[0], LocalVolume)
    assert isinstance(stack.volume[1], RemoteVolume)
    # Each node owns its own disks and cache shard.
    for node in topology.nodes:
        assert len(node.drivers) == 1 and len(node.cache_shards) == 1


def test_cluster_binding_overrides_nic_parameters():
    binding = ClusterBinding(bandwidth_overrides={1: 1 * MB}, latency_overrides={0: 0.05})
    stack = build_stack(cluster_spec(nodes=2), binding)
    nics = stack.cluster.nics
    assert nics[1].bandwidth == 1 * MB
    assert nics[0].latency == 0.05


def test_volume_set_rejects_raw_block_io(scheduler):
    from repro.core.storage.array import VolumeSet

    vset = VolumeSet(
        [LocalVolume([MemoryBackedDiskDriver(scheduler, size_bytes=2 * MB)], block_size=4 * KB)]
    )
    with pytest.raises(StorageError):
        run(scheduler, vset.read_run, 0, 1)


# --------------------------------------------------------------------------- equivalence


def skewed_trace(seed=3, duration=120.0, directories=1):
    """All traffic lands in ``directories`` directories: with
    directory-affinity placement the load concentrates on that many homes."""
    profile = WorkloadProfile(
        name="cluster-skew",
        duration=duration,
        num_clients=4,
        initial_files=40,
        directory_count=directories,
        read_fraction=0.7,
        stat_fraction=1.0,
        stat_burst=1,
        hot_read_fraction=0.6,
        hot_set_size=10,
    )
    return generate_workload(profile, seed=seed)


def test_one_node_cluster_reproduces_array_summary_byte_identically():
    """The acceptance contract, one level above the array's own: a
    ``ClusterConfig(nodes=1)`` replay must route every operation through the
    cluster placement tier and still produce the exact measurements of the
    equivalent ``ArrayConfig`` stack."""
    trace = skewed_trace(directories=4)
    base = replace(
        small_test_config(),
        array=ArrayConfig(volumes=2, buses=1, disks_per_bus=2),
    )
    arrayed = PatsySimulator(base).replay(trace, trace_name="t")
    clustered_config = replace(base, cluster=ClusterConfig(nodes=1))
    clustered = PatsySimulator(clustered_config).replay(trace, trace_name="t")
    assert repr(arrayed.summary()) == repr(clustered.summary())
    # The durable metadata tier (on by default) must be byte-invisible when
    # no migration ever happens: with nothing journalled it touches neither
    # the scheduler nor the devices, so disabling it changes nothing.
    without_metadata = replace(base, cluster=ClusterConfig(nodes=1, metadata=False))
    bare = PatsySimulator(without_metadata).replay(trace, trace_name="t")
    assert repr(bare.summary()) == repr(clustered.summary())
    # Both went through the multi-volume stack; only the real cluster run
    # carries cluster stats (a one-node cluster has no network to report).
    assert arrayed.volume_stats and clustered.volume_stats
    assert not arrayed.cluster_stats and not clustered.cluster_stats


def test_multi_node_replay_spreads_traffic_and_reports():
    config = cluster_config(
        nodes=2, scale=0.002, volumes_per_node=1, disks_per_node=1, placement="hash",
        rebalance=False,
    )
    result = PatsySimulator(config).replay(skewed_trace(directories=8), trace_name="c")
    assert result.errors == 0
    stats = result.cluster_stats
    assert stats["nodes"] == 2
    node1 = stats["per_node"]["node1"]
    assert node1["remote_io"]["remote_reads"] + node1["remote_io"]["remote_writes"] > 0
    assert node1["nic"]["messages"] > 0
    assert node1["disk_operations"] > 0  # the remote spindle really served I/O
    from repro.analysis.report import format_cluster_table

    table = format_cluster_table(stats)
    assert "node0" in table and "node1" in table
    assert "placement=hash" in table


# --------------------------------------------------------------------------- migration


def build_online_cluster(nodes=2):
    spec = StackSpec(
        cache=CacheConfig(size_bytes=256 * 4 * KB),
        flush=FlushConfig(policy="periodic"),
        layout=LayoutConfig(segment_size=16 * 4 * KB),
        array=ArrayConfig(volumes=1, buses=1, disks_per_bus=1),
        cluster=ClusterConfig(nodes=nodes, rebalance=False),
    )
    stack = build_stack(spec, OnlineBinding(size_bytes=16 * MB * nodes))
    thread = stack.scheduler.spawn(stack.fs.mount, True)
    stack.scheduler.run_until_complete(thread)
    return stack


def test_migration_keeps_reads_byte_identical_with_real_bytes():
    stack = build_online_cluster(nodes=2)
    scheduler = stack.scheduler
    client = stack.client
    payload = bytes(range(256)) * 96  # 24 KB, six blocks

    def setup():
        handle = yield from client.create("/data.bin")
        yield from client.write(handle, 0, payload)
        yield from client.fsync(handle)
        yield from client.close(handle)
        file = yield from client.lookup("/data.bin")
        return file.file_id

    file_id = run(scheduler, setup)
    placement = stack.cluster.placement
    old_home = placement.volume_of_file(file_id)
    new_home = 1 - old_home
    rebalancer = ClusterRebalancer(stack.fs, placement, stack.spec.cluster)
    moved = run(scheduler, rebalancer.migrate_file, file_id, new_home)
    assert moved and placement.volume_of_file(file_id) == new_home
    assert rebalancer.blocks_copied >= 6

    def read_all():
        return (yield from client.read_file("/data.bin", 0, len(payload)))

    # Served from the copy-forwarded cache blocks.
    assert run(scheduler, read_all) == payload
    # And from the new volume's disk after dropping the cache.
    run(scheduler, stack.fs.sync)
    stack.cache.invalidate_file(file_id)
    assert run(scheduler, read_all) == payload
    # The old home no longer knows the inode; the new one does.
    assert file_id not in stack.layout.sublayouts[old_home].inode_map
    assert file_id in stack.layout.sublayouts[new_home].inode_map


def test_migration_skips_directories_and_root():
    stack = build_online_cluster(nodes=2)
    scheduler = stack.scheduler
    client = stack.client

    def setup():
        yield from client.mkdir("/dir")
        directory = yield from client.lookup("/dir")
        return directory.file_id

    directory_id = run(scheduler, setup)
    rebalancer = ClusterRebalancer(stack.fs, stack.cluster.placement, stack.spec.cluster)
    other = 1 - stack.cluster.placement.volume_of_file(directory_id)
    assert run(scheduler, rebalancer.migrate_file, directory_id, other) is False
    assert run(scheduler, rebalancer.migrate_file, ROOT_INODE_NUMBER, 1) is False
    assert rebalancer.migrations == 0


def rebalancing_config(seed=0, rebalance=True):
    return cluster_config(
        nodes=2,
        scale=0.002,
        seed=seed,
        volumes_per_node=1,
        disks_per_node=1,
        placement="directory",
        rebalance=rebalance,
    )


def _rebalancing_run(seed=0, rebalance=True):
    config = replace(
        rebalancing_config(seed=seed, rebalance=rebalance),
        cluster=replace(
            rebalancing_config(seed=seed).cluster,
            rebalance=rebalance,
            rebalance_interval=2.0,
            imbalance_threshold=1.5,
            max_migrations_per_round=4,
        ),
    )
    simulator = PatsySimulator(config)
    result = simulator.replay(skewed_trace(seed=5, directories=1), trace_name="skew")
    return result


def test_rebalancer_migrates_under_directory_skew():
    result = _rebalancing_run()
    assert result.errors == 0
    rebalancer = result.cluster_stats["rebalancer"]
    assert rebalancer["migrations"] > 0
    assert rebalancer["blocks_copied"] > 0
    assert result.cluster_stats["migration_schedule"]
    # Migrated files really moved: the idle node served disk traffic.
    node1 = result.cluster_stats["per_node"]["node1"]
    node0 = result.cluster_stats["per_node"]["node0"]
    assert node1["disk_operations"] > 0 or node0["disk_operations"] > 0


def test_rebalancing_schedule_is_deterministic():
    """Same seed + same skew ⇒ the identical migration schedule, down to
    the timestamps, and identical end-to-end measurements."""
    first = _rebalancing_run(seed=1)
    second = _rebalancing_run(seed=1)
    assert first.cluster_stats["migration_schedule"] == second.cluster_stats[
        "migration_schedule"
    ]
    assert repr(first.summary()) == repr(second.summary())


def test_rebalancing_changes_with_the_seed_but_replays_cleanly():
    result = _rebalancing_run(seed=2)
    assert result.errors == 0
