"""Streaming replay: parity with materialised replay, trace iterators,
client scanning and the demultiplexer's bounded buffering."""

import io
from dataclasses import replace

import pytest

from repro.config import small_test_config
from repro.errors import TraceError
from repro.patsy.coda import iter_coda_trace, load_coda_trace
from repro.patsy.simulator import PatsySimulator
from repro.patsy.sprite import iter_sprite_trace, load_sprite_trace
from repro.patsy.synthetic import sprite_like_trace
from repro.patsy.traces import (
    TraceRecord,
    iter_trace,
    iter_trace_tuples,
    load_trace,
    save_trace,
    scan_trace_clients,
    stream_synthesize_missing_times,
    synthesize_missing_times,
)


def replay_trace(seed=5, scale=0.12):
    trace = sprite_like_trace("1a", scale=scale, seed=seed)
    trace.sort(key=lambda record: record.timestamp)
    return trace


# --------------------------------------------------------------------------- parity


def test_streaming_replay_matches_materialised_byte_for_byte():
    trace = replay_trace()
    materialised = PatsySimulator(small_test_config(seed=5)).replay(trace, trace_name="t")
    streaming = PatsySimulator(
        replace(small_test_config(seed=5), streaming=True)
    ).replay(trace, trace_name="t")
    assert streaming.operations == materialised.operations
    assert streaming.errors == materialised.errors
    assert streaming.cache_stats["hit_rate"] == materialised.cache_stats["hit_rate"]
    assert streaming.blocks_written_to_disk == materialised.blocks_written_to_disk
    # Not just close: the whole summary (latency means, percentiles,
    # per-client shards) is byte-identical because the streaming demux
    # presents the scheduler with the same execution.
    assert streaming.latency.summary() == materialised.latency.summary()
    assert streaming.summary() == materialised.summary()
    assert streaming.latency.interval_reports == materialised.latency.interval_reports


def test_streaming_replay_from_path_matches_materialised(tmp_path):
    trace_path = tmp_path / "trace.tsv"
    save_trace(replay_trace(), trace_path)
    materialised = PatsySimulator(small_test_config(seed=5)).replay(str(trace_path))
    streaming = PatsySimulator(
        replace(small_test_config(seed=5), streaming=True)
    ).replay(str(trace_path))
    assert streaming.latency.summary() == materialised.latency.summary()
    assert streaming.summary() == materialised.summary()
    assert streaming.stream_stats["records_replayed"] == materialised.operations


def test_streaming_replay_discovery_mode_runs_every_operation():
    trace = replay_trace()
    baseline = PatsySimulator(small_test_config(seed=5)).replay(trace)

    def generate():
        yield from trace

    discovered = PatsySimulator(small_test_config(seed=5)).replay(generate())
    assert discovered.operations == baseline.operations
    assert discovered.errors == baseline.errors
    assert discovered.stream_stats["clients"] == len({r.client for r in trace})


def test_streaming_replay_bounded_buffering():
    trace = replay_trace()
    result = PatsySimulator(
        replace(small_test_config(seed=5), streaming=True)
    ).replay(trace)
    assert 0 < result.stream_stats["peak_buffered_records"] < len(trace)


def test_streaming_replay_rejects_empty_trace():
    simulator = PatsySimulator(replace(small_test_config(), streaming=True))
    with pytest.raises(TraceError):
        simulator.replay([])
    with pytest.raises(TraceError):
        PatsySimulator(small_test_config()).replay(iter([]))


def test_streaming_replay_honours_max_time():
    trace = replay_trace()
    cutoff = trace[len(trace) // 2].timestamp
    materialised = PatsySimulator(small_test_config(seed=5)).replay(trace, max_time=cutoff)
    streaming = PatsySimulator(
        replace(small_test_config(seed=5), streaming=True)
    ).replay(trace, max_time=cutoff)
    assert streaming.operations == materialised.operations
    assert streaming.latency.summary() == materialised.latency.summary()


def test_per_client_latency_surfaced_in_summary():
    result = PatsySimulator(small_test_config(seed=5)).replay(replay_trace())
    per_client = result.summary()["per_client_latency"]
    assert set(per_client) == {record.client for record in replay_trace()}
    for stats in per_client.values():
        assert stats["operations"] > 0
        assert stats["median_latency"] <= stats["p95_latency"] <= stats["p99_latency"]
    assert sum(stats["operations"] for stats in per_client.values()) == result.operations


# --------------------------------------------------------------------------- trace iterators


def test_iter_trace_matches_load_trace(tmp_path):
    trace_path = tmp_path / "trace.tsv"
    records = replay_trace(scale=0.05)
    save_trace(records, trace_path)
    assert list(iter_trace(trace_path)) == load_trace(trace_path)


def test_iter_trace_tuples_matches_records(tmp_path):
    trace_path = tmp_path / "trace.tsv"
    records = replay_trace(scale=0.05)
    save_trace(records, trace_path)
    loaded = load_trace(trace_path)
    tuples = list(iter_trace_tuples(trace_path))
    assert len(tuples) == len(loaded)
    for parsed, record in zip(tuples, loaded):
        assert parsed == (
            record.timestamp,
            record.client,
            record.op,
            record.path,
            record.offset,
            record.size,
            record.path2,
        )


def test_scan_trace_clients(tmp_path):
    trace_path = tmp_path / "trace.tsv"
    records = replay_trace(scale=0.05)
    save_trace(records, trace_path)
    assert scan_trace_clients(trace_path) == sorted({r.client for r in records})


def test_stream_synthesize_missing_times_matches_batch():
    for name in ("1a", "1b", "5"):
        records = sprite_like_trace(name, scale=0.05, seed=3)
        records.sort(key=lambda record: record.timestamp)
        assert list(stream_synthesize_missing_times(records)) == synthesize_missing_times(
            records
        )


def test_stream_synthesize_reopen_keeps_abandoned_bracket():
    # A re-open without a close abandons the first bracket; its records must
    # still come through (matching the batch behaviour) instead of vanishing.
    records = [
        TraceRecord(0.0, 0, "open", "/f"),
        TraceRecord(0.5, 0, "read", "/f", size=10),
        TraceRecord(1.0, 0, "open", "/f"),
        TraceRecord(1.5, 0, "read", "/f", size=10),
        TraceRecord(2.0, 0, "close", "/f"),
    ]
    streamed = list(stream_synthesize_missing_times(records))
    assert len(streamed) == len(records)
    assert streamed == synthesize_missing_times(records)


def test_demux_early_finishing_client_does_not_buffer_the_tail():
    # Client 1's only record is at the very start; once it is done, its
    # final pull must not drag the whole remaining trace into memory.
    records = [TraceRecord(0.0, 1, "stat", "/early")]
    records += [
        TraceRecord(0.001 * (i + 1), 0, "stat", f"/f{i % 7}") for i in range(2_000)
    ]
    result = PatsySimulator(
        replace(small_test_config(seed=2), streaming=True)
    ).replay(records)
    assert result.operations == len(records)
    assert result.stream_stats["peak_buffered_records"] < 100


def test_stream_synthesize_handles_unclosed_bracket():
    records = [
        TraceRecord(0.0, 0, "open", "/f"),
        TraceRecord(0.0, 0, "read", "/f", size=10),
        TraceRecord(1.0, 1, "stat", "/g"),
    ]
    streamed = list(stream_synthesize_missing_times(records))
    assert sorted(streamed, key=lambda r: (r.timestamp, r.client)) == sorted(
        synthesize_missing_times(records), key=lambda r: (r.timestamp, r.client)
    )


SPRITE_TEXT = """
0.000 host1.100 open /usr/data/file1 0 0
0.100 host1.100 read /usr/data/file1 0 8192
0.200 host1.100 close /usr/data/file1
0.500 host2.200 create /tmp/scratch
0.600 host2.200 write /tmp/scratch 0 4096
0.700 host2.200 remove /tmp/scratch
"""

CODA_TEXT = """
0.000 clientA vol7 open /doc/report 0 0
0.250 clientA vol7 read /doc/report 0 1024
0.500 clientA vol7 close /doc/report
"""


def test_iter_sprite_trace_matches_load(tmp_path):
    path = tmp_path / "sprite.trace"
    path.write_text(SPRITE_TEXT)
    assert list(iter_sprite_trace(path)) == load_sprite_trace(path)
    assert list(iter_sprite_trace(io.StringIO(SPRITE_TEXT))) == load_sprite_trace(
        io.StringIO(SPRITE_TEXT)
    )


def test_iter_coda_trace_matches_load(tmp_path):
    path = tmp_path / "coda.trace"
    path.write_text(CODA_TEXT)
    assert list(iter_coda_trace(path)) == load_coda_trace(path)


def test_streaming_replay_of_sprite_iterator(tmp_path):
    path = tmp_path / "sprite.trace"
    path.write_text(SPRITE_TEXT)
    result = PatsySimulator(small_test_config(seed=1)).replay(iter_sprite_trace(path))
    assert result.operations == len(load_sprite_trace(path))
    assert result.errors == 0
