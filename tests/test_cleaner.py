"""The LFS cleaner daemon and cleaning policies."""

import pytest

from repro.core.blocks import CacheBlock
from repro.core.inode import FileKind
from repro.core.storage.cleaner import (
    CleanerDaemon,
    CostBenefitCleaner,
    GreedyCleaner,
    make_cleaner,
)
from repro.core.storage.lfs import LogStructuredLayout, SegmentInfo
from repro.core.storage.volume import LocalVolume
from repro.errors import ConfigurationError
from repro.pfs.diskfile import MemoryBackedDiskDriver
from repro.units import KB, MB
from tests.conftest import run


def make_layout(scheduler, disk_mb=4, segment_blocks=8):
    driver = MemoryBackedDiskDriver(scheduler, size_bytes=disk_mb * MB)
    volume = LocalVolume([driver], block_size=4 * KB)
    layout = LogStructuredLayout(
        scheduler, volume, block_size=4 * KB, segment_blocks=segment_blocks, simulated=False
    )
    run(scheduler, layout.format)
    run(scheduler, layout.mount)
    return layout


def data_block(payload=b"x"):
    block = CacheBlock(0, 4 * KB, with_data=True)
    block.data[: len(payload)] = payload
    return block


def test_make_cleaner_factory():
    assert isinstance(make_cleaner("greedy"), GreedyCleaner)
    assert isinstance(make_cleaner("cost-benefit"), CostBenefitCleaner)
    with pytest.raises(ConfigurationError):
        make_cleaner("magic")


def test_greedy_picks_emptiest_segment():
    infos = [SegmentInfo(0, 5, 7, 0.0), SegmentInfo(1, 1, 7, 0.0), SegmentInfo(2, 3, 7, 0.0)]
    assert GreedyCleaner().choose(infos, now=10.0).index == 1
    assert GreedyCleaner().choose([], now=10.0) is None


def test_cost_benefit_prefers_old_empty_segments():
    young_full = SegmentInfo(0, 6, 7, modified_at=9.0)
    old_empty = SegmentInfo(1, 1, 7, modified_at=1.0)
    assert CostBenefitCleaner().choose([young_full, old_empty], now=10.0).index == 1
    assert CostBenefitCleaner().choose([], now=10.0) is None


def test_cleaner_daemon_recovers_free_segments(scheduler):
    layout = make_layout(scheduler, disk_mb=2, segment_blocks=8)
    daemon = CleanerDaemon(
        scheduler, layout, GreedyCleaner(), low_water=0.2, high_water=0.5, check_interval=1.0
    )
    inode = layout.allocate_inode(FileKind.REGULAR)
    # Write and rewrite the same blocks so most segments are full of dead data.
    for _round in range(6):
        run(
            scheduler,
            layout.write_file_blocks,
            inode,
            [(i, data_block(b"r")) for i in range(12)],
        )
    assert layout.free_segment_fraction < 0.9
    cleaned = run(scheduler, daemon.clean_until, 0.95)
    assert cleaned >= 1
    assert layout.free_segment_fraction >= 0.9
    assert daemon.segments_cleaned == cleaned


def test_cleaner_daemon_thread_runs_in_background(scheduler):
    layout = make_layout(scheduler, disk_mb=2, segment_blocks=8)
    daemon = CleanerDaemon(
        scheduler, layout, GreedyCleaner(), low_water=0.6, high_water=0.8, check_interval=1.0
    )
    daemon.start()
    inode = layout.allocate_inode(FileKind.REGULAR)
    for _round in range(6):
        run(
            scheduler,
            layout.write_file_blocks,
            inode,
            [(i, data_block(b"q")) for i in range(10)],
        )
    scheduler.run(until=20.0)
    assert layout.free_segment_fraction >= 0.6
    assert daemon.blocks_copied >= 0


def test_cleaner_water_mark_validation(scheduler):
    layout = make_layout(scheduler)
    with pytest.raises(ConfigurationError):
        CleanerDaemon(scheduler, layout, GreedyCleaner(), low_water=0.8, high_water=0.3)


def test_segment_info_utilisation():
    info = SegmentInfo(index=0, live_blocks=3, capacity=6, modified_at=0.0)
    assert info.utilisation == pytest.approx(0.5)
