"""The paper's central claim: the same components run on-line and off-line.

These tests instantiate the *same* framework classes once as a simulator
(Patsy: simulated disks, no data buffers) and once as a real system (PFS:
memory-backed disk, real bytes), drive both through the abstract client
interface, and check that behaviour and policy decisions agree — "we did not
have to change anything in the code except for some small additions when
data was actually moved".
"""

import pytest

from repro.assembly import OnlineBinding, SimulatedBinding, StackSpec, build_stack
from repro.config import ArrayConfig, CacheConfig, FlushConfig, small_test_config
from repro.core.cache import BlockCache
from repro.core.client import AbstractClientInterface
from repro.core.flush import (
    NvramPolicy,
    PeriodicUpdatePolicy,
    ShardedFlushPolicy,
    make_flush_policy,
)
from repro.core.storage.array import RoutedLayout, ShardedCache
from repro.core.storage.cleaner import CleanerSet
from repro.patsy.simulator import PatsySimulator
from repro.patsy.traces import TraceRecord
from repro.pfs.filesystem import PegasusFileSystem
from repro.units import KB, MB
from repro.config import LayoutConfig


WORKLOAD = [
    ("mkdir", "/data", b""),
    ("write", "/data/one.txt", b"1" * 6000),
    ("write", "/data/two.txt", b"2" * 12000),
    ("read", "/data/one.txt", b""),
    ("delete", "/data/two.txt", b""),
    ("write", "/data/three.txt", b"3" * 3000),
]


def drive_pfs(flush_policy="periodic"):
    pfs = PegasusFileSystem(
        size_bytes=16 * MB,
        cache=CacheConfig(size_bytes=1 * MB),
        flush=FlushConfig(policy=flush_policy),
        layout=LayoutConfig(segment_size=64 * KB),
    )
    pfs.format()
    for op, path, payload in WORKLOAD:
        if op == "mkdir":
            pfs.mkdir(path)
        elif op == "write":
            pfs.write_file(path, payload)
        elif op == "read":
            pfs.read_file(path)
        elif op == "delete":
            pfs.delete(path)
    return pfs


def drive_patsy(flush_policy="periodic"):
    config = small_test_config()
    config = config.with_flush(FlushConfig(policy=flush_policy))
    simulator = PatsySimulator(config)
    records = []
    t = 0.0
    for op, path, payload in WORKLOAD:
        t += 0.2
        if op == "mkdir":
            records.append(TraceRecord(t, 0, "mkdir", path))
        elif op == "write":
            records.append(TraceRecord(t, 0, "write", path, offset=0, size=len(payload)))
        elif op == "read":
            records.append(TraceRecord(t, 0, "read", path, offset=0, size=4096))
        elif op == "delete":
            records.append(TraceRecord(t, 0, "unlink", path))
    result = simulator.replay(records)
    return simulator, result


def test_both_instantiations_share_component_classes():
    pfs = drive_pfs()
    simulator, _result = drive_patsy()
    # Identical component classes on both sides of the cut-and-paste line.
    assert type(pfs.cache) is type(simulator.cache) is BlockCache
    assert type(pfs.fs.namespace) is type(simulator.fs.namespace)
    assert type(pfs.client).__mro__[1] is AbstractClientInterface or isinstance(
        pfs.client, AbstractClientInterface
    )
    assert type(pfs.layout).__name__ == type(simulator.layout).__name__ == "LogStructuredLayout"
    # The only difference: the simulator's cache has no data buffers.
    assert pfs.cache.with_data is True
    assert simulator.cache.with_data is False


def test_same_namespace_outcome_in_both_instantiations():
    pfs = drive_pfs()
    simulator, result = drive_patsy()
    assert result.errors == 0
    pfs_entries = set(pfs.listdir("/data"))
    patsy_root = simulator.fs.root_directory()

    def list_patsy():
        directory = yield from simulator.fs.namespace.resolve("/data")
        return (yield from directory.list_entries())

    thread = simulator.scheduler.spawn(list_patsy)
    patsy_entries = set(simulator.scheduler.run_until_complete(thread))
    assert pfs_entries == patsy_entries == {"one.txt", "three.txt"}
    assert patsy_root is not None


def test_same_policy_objects_run_in_both_worlds():
    pfs = drive_pfs(flush_policy="nvram")
    simulator, _ = drive_patsy(flush_policy="nvram")
    assert isinstance(pfs.flush_policy, NvramPolicy)
    assert isinstance(simulator.flush_policy, NvramPolicy)
    assert pfs.cache.dirty_limit_bytes is not None
    assert simulator.cache.dirty_limit_bytes is not None


def test_write_savings_visible_in_both_instantiations():
    """Deleting a freshly written file saves writes on-line and off-line."""
    pfs = drive_pfs(flush_policy="ups")
    simulator, result = drive_patsy(flush_policy="ups")
    assert pfs.cache.stats.dirty_blocks_discarded >= 1
    assert result.write_savings_blocks >= 1


def test_migrating_a_policy_requires_no_code_changes():
    """The same factory call configures the policy for either instantiation."""
    policy_for_patsy = make_flush_policy(FlushConfig(policy="periodic"))
    policy_for_pfs = make_flush_policy(FlushConfig(policy="periodic"))
    assert isinstance(policy_for_patsy, PeriodicUpdatePolicy)
    assert type(policy_for_patsy) is type(policy_for_pfs)


# --------------------------------------------------------------------------- one spec, two worlds
#
# The assembly layer makes the paper's claim checkable wholesale: build the
# *same* StackSpec under both bindings and assert the component classes are
# identical across the cut-and-paste line, layer by layer.


def _component_classes(stack):
    """The classes of every policy-bearing component in a stack."""
    classes = {
        "cache": type(stack.cache),
        "flush": type(stack.flush_policy),
        "layout": type(stack.layout),
        "cleaner": type(stack.cleaner),
        "placement": type(stack.placement),
    }
    if isinstance(stack.cache, ShardedCache):
        classes["cache_shards"] = [type(shard) for shard in stack.cache.shards]
        classes["shard_policies"] = [
            type(shard.policy) for shard in stack.cache.shards
        ]
    else:
        classes["replacement"] = type(stack.cache.policy)
    if isinstance(stack.layout, RoutedLayout):
        classes["sublayouts"] = [type(sub) for sub in stack.layout.sublayouts]
    if isinstance(stack.flush_policy, ShardedFlushPolicy):
        classes["flush_children"] = [
            type(child) for child in stack.flush_policy.children
        ]
    if isinstance(stack.cleaner, CleanerSet):
        classes["cleaner_policies"] = [
            type(daemon.policy) for daemon in stack.cleaner
        ]
    return classes


@pytest.mark.parametrize(
    "array",
    [
        None,
        ArrayConfig(volumes=3, buses=2, disks_per_bus=2, placement="stripe"),
    ],
    ids=["single-volume", "multi-volume"],
)
def test_one_spec_builds_identical_component_classes_in_both_worlds(array):
    spec = StackSpec(
        cache=CacheConfig(size_bytes=192 * 4 * KB, replacement="arc"),
        flush=FlushConfig(policy="nvram", nvram_bytes=16 * 4 * KB),
        layout=LayoutConfig(segment_size=16 * 4 * KB),
        array=array,
        seed=2,
    )
    simulated = build_stack(spec, SimulatedBinding())
    online = build_stack(spec, OnlineBinding(size_bytes=32 * MB))
    # The paper's claim, enforced layer by layer: identical classes for the
    # cache (and every shard), flush policy (and every per-shard child),
    # layout (and every sub-layout), cleaner and placement across worlds.
    assert _component_classes(simulated) == _component_classes(online)
    # The only difference is the helper binding underneath.
    assert simulated.cache.with_data is False and online.cache.with_data is True
    assert type(simulated.drivers[0]) is not type(online.drivers[0])
