"""Replication tier: n-way replicas, scripted faults, fail-over, repair.

The contract under test, end to end:

* ``replicas=0`` (the default) is **inert** — no replication objects, no
  journal records, no extra manifest keys, no spawned daemons: the stack
  is byte-identical to the pre-replication one.
* With ``replicas>=1`` every write is mirrored onto ``k`` extra volumes
  on other failure domains; after a scripted volume/node kill every read
  returns byte-identical data through fail-over — proved with *scrubbed*
  kills, where the dead volumes' memory-backed disk images are zeroed so
  a read that touched dead hardware could only return garbage.
* The repair daemon notices the fault-board epoch move and restores full
  replication (promote + re-replicate), journalling the replica-set
  repoints through the metadata WAL.

Everything runs under both event loops — the sequential reference and the
sharded per-node loop — via the ``sharded`` parametrisation.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.assembly.bindings import OnlineBinding, SimulatedBinding
from repro.assembly.builder import build_stack
from repro.assembly.spec import StackSpec
from repro.config import (
    ArrayConfig,
    CacheConfig,
    ClusterConfig,
    FlushConfig,
    LayoutConfig,
)
from repro.core.cluster.placement import ClusterPlacement
from repro.core.faults import FaultEvent, FaultInjector
from repro.core.metadata import DurableStore, decode_wal
from repro.core.metadata.manifest import Manifest
from repro.core.metadata.wal import REC_RSET
from repro.core.storage.array import HashPlacement
from repro.errors import ConfigurationError, DataUnavailable
from repro.units import KB, MB
from tests.conftest import run

NUM_FILES = 8
FILE_BYTES = 12 * KB  # three 4 KB blocks per file


def payload(index: int) -> bytes:
    return bytes((index * 41 + j) % 251 for j in range(FILE_BYTES))


def replica_spec(
    nodes=3,
    volumes_per_node=1,
    replicas=1,
    sharded=True,
    repair=True,
    repair_interval=0.5,
):
    return StackSpec(
        cache=CacheConfig(size_bytes=256 * 4 * KB),
        flush=FlushConfig(policy="periodic"),
        layout=LayoutConfig(segment_size=16 * 4 * KB),
        array=ArrayConfig(
            volumes=volumes_per_node,
            buses=1,
            disks_per_bus=volumes_per_node,
            placement="hash",
        ),
        cluster=ClusterConfig(
            nodes=nodes,
            rebalance=False,
            replicas=replicas,
            repair=repair,
            repair_interval=repair_interval,
            sharded_loop=sharded,
        ),
    )


def build_online(spec, store=None):
    binding = OnlineBinding(
        size_bytes=16 * MB * spec.cluster.nodes,
        metadata_store=store if store is not None else DurableStore(),
    )
    return build_stack(spec, binding)


def populate(stack, num_files=NUM_FILES):
    """Mount fresh, create ``num_files`` synced files, checkpoint."""
    client = stack.client
    fs = stack.fs

    def body():
        yield from fs.mount(True)
        files = []
        for i in range(num_files):
            path = f"/r{i}"
            handle = yield from client.create(path)
            yield from client.write(handle, 0, payload(i))
            yield from client.fsync(handle)
            yield from client.close(handle)
            file = yield from client.lookup(path)
            files.append((path, file.file_id))
        yield from fs.sync()
        return files

    return run(stack.scheduler, body)


def check_reads(stack, files, context):
    for path, _fid in files:
        index = int(path[2:])
        data = run(stack.scheduler, stack.client.read_file, path, 0, FILE_BYTES)
        assert data == payload(index), f"{path} corrupted ({context})"


def kill(stack, kind, target, at=None, scrub=False):
    """Inject one scripted fault and run the loop past its fire time."""
    scheduler = stack.scheduler
    when = scheduler.now + 0.1 if at is None else at
    injector = FaultInjector(
        scheduler,
        stack.cluster.faults,
        [FaultEvent(time=when, kind=kind, target=target)],
        topology=stack.cluster,
        scrub=scrub,
    )
    injector.start()
    scheduler.run(until=when + 0.05, inclusive=True)
    assert injector.applied == 1
    return injector


# --------------------------------------------------------------------------- replicas=0 pin


def test_replicas_zero_is_inert():
    """The default configuration must not grow any replication machinery:
    the byte-identity pin against the pre-replication stack."""
    stack = build_online(replica_spec(replicas=0))
    files = populate(stack)
    assert stack.layout.replication is None
    assert stack.cluster.replication is None
    assert stack.cluster.repairer is None
    assert stack.cluster.faults is not None and not stack.cluster.faults.active
    assert all(not t.name.startswith("replication") for t in stack.scheduler.threads)
    check_reads(stack, files, "replicas=0")
    # No RSET ever journalled, and the manifest wire format is unchanged:
    # an empty replica table encodes to exactly the pre-replication JSON.
    manifest = Manifest(
        epoch=1,
        nodes=3,
        volumes_per_node=1,
        placement="hash",
        checkpoint_lsn=0,
        overrides={},
    )
    assert b"replicas" not in manifest.encode()


def test_replication_requires_foreign_inode_hosting():
    """FFS sub-layouts (fixed inode slots) cannot hold another volume's
    shadow inodes; the builder must reject the combination outright."""
    spec = replica_spec(replicas=1)
    spec = StackSpec(
        cache=spec.cache,
        flush=spec.flush,
        layout=LayoutConfig(kind="ffs"),
        array=spec.array,
        cluster=spec.cluster,
    )
    with pytest.raises(ConfigurationError, match="foreign inode"):
        build_stack(spec, SimulatedBinding(metadata_store=DurableStore()))


# --------------------------------------------------------------------------- placement property


@settings(max_examples=200, deadline=None)
@given(
    nodes=st.integers(min_value=1, max_value=5),
    volumes_per_node=st.integers(min_value=1, max_value=4),
    replicas=st.integers(min_value=1, max_value=4),
    file_id=st.integers(min_value=2, max_value=5000),
)
def test_replica_sets_never_colocate(nodes, volumes_per_node, replicas, file_id):
    """Property: a file's primary and its replicas all live on distinct
    failure domains — distinct nodes on a multi-node cluster, distinct
    volumes on a single node — for every file id and cluster shape."""
    num_volumes = nodes * volumes_per_node
    domains = nodes if nodes > 1 else num_volumes
    if replicas >= domains:
        with pytest.raises(ConfigurationError):
            ClusterPlacement(
                HashPlacement(num_volumes),
                nodes=nodes,
                volumes_per_node=volumes_per_node,
                replicas=replicas,
            )
        return
    placement = ClusterPlacement(
        HashPlacement(num_volumes),
        nodes=nodes,
        volumes_per_node=volumes_per_node,
        replicas=replicas,
    )
    primary = placement.volume_of_file(file_id)
    rset = placement.replica_set(file_id)
    assert len(rset) == replicas
    homes = (primary,) + rset
    assert len(set(homes)) == len(homes), "replica volume collision"
    if nodes > 1:
        home_nodes = [placement.node_of_volume(v) for v in homes]
        assert len(set(home_nodes)) == len(home_nodes), "replica node collision"


# --------------------------------------------------------------------------- fail-over reads


@pytest.mark.parametrize("sharded", [False, True], ids=["sequential", "sharded"])
def test_failover_reads_survive_scrubbed_node_kill(sharded):
    """Kill a whole node *and zero its disk images*: every file must still
    read back byte-identical, via the surviving replicas only."""
    stack = build_online(replica_spec(nodes=3, sharded=sharded, repair=False))
    files = populate(stack)
    manager = stack.cluster.replication
    assert manager is not None
    assert manager.under_replicated_files() == 0
    kill(stack, "node_crash", 1, scrub=True)
    check_reads(stack, files, f"node 1 dead, sharded={sharded}")
    placement = stack.cluster.placement
    dead = set(stack.cluster.faults.dead_volumes)
    assert dead == set(placement.volumes_of_node(1))
    # Files homed on the dead node really were served by fail-over.
    homed_on_dead = [f for f, fid in files if placement.volume_of_file(fid) in dead]
    assert homed_on_dead, "workload never placed a file on the killed node"
    assert manager.failover_reads > 0
    assert manager.under_replicated_files() > 0  # repair was off


@pytest.mark.parametrize("sharded", [False, True], ids=["sequential", "sharded"])
def test_reads_fail_without_replication(sharded):
    """The control: the same scrubbed kill with replication off must lose
    the files homed on the dead node."""
    stack = build_online(replica_spec(nodes=3, replicas=0, sharded=sharded))
    files = populate(stack)
    kill(stack, "node_crash", 1, scrub=True)
    placement = stack.cluster.placement
    dead = set(placement.volumes_of_node(1))
    lost = [p for p, fid in files if placement.volume_of_file(fid) in dead]
    assert lost, "workload never placed a file on the killed node"
    with pytest.raises(DataUnavailable):
        run(stack.scheduler, stack.client.read_file, lost[0], 0, FILE_BYTES)


# --------------------------------------------------------------------------- repair


@pytest.mark.parametrize("sharded", [False, True], ids=["sequential", "sharded"])
def test_repairer_restores_full_replication(sharded):
    """After a volume dies the repair daemon must promote/re-replicate
    every damaged file; a second scrubbed kill of the *original* copies
    then proves the new copies are real."""
    store = DurableStore()
    stack = build_online(replica_spec(nodes=3, sharded=sharded), store=store)
    files = populate(stack)
    manager = stack.cluster.replication
    repairer = stack.cluster.repairer
    assert repairer is not None
    kill(stack, "disk_fail", 0, scrub=True)
    # Let the repair daemon observe the epoch and work the backlog.
    deadline = stack.scheduler.now + 60.0
    while manager.under_replicated_files() and stack.scheduler.now < deadline:
        stack.scheduler.run(until=stack.scheduler.now + 1.0, inclusive=True)
    assert manager.under_replicated_files() == 0
    assert repairer.promoted_files + repairer.repaired_copies > 0
    assert repairer.lost_files == 0
    check_reads(stack, files, f"post-repair, sharded={sharded}")
    # The repoints were journalled: force the WAL out and look for RSETs.
    run(stack.scheduler, stack.metadata.wal.sync)
    records, _ = decode_wal(bytes(store.wal))
    assert any(r.rtype == REC_RSET for r in records)
    # The new copies must live outside the dead volume.
    placement = stack.cluster.placement
    for _path, fid in files:
        assert placement.volume_of_file(fid) != 0
        assert 0 not in placement.replica_set(fid)


def test_repair_survives_killing_the_promoted_survivors():
    """The acid test: kill volume 0, let repair finish, then kill the
    volume that served the fail-overs.  Reads must *still* be intact —
    only possible if repair created genuinely new durable copies."""
    stack = build_online(replica_spec(nodes=3, volumes_per_node=1))
    files = populate(stack)
    manager = stack.cluster.replication
    kill(stack, "disk_fail", 0, scrub=True)
    deadline = stack.scheduler.now + 60.0
    while manager.under_replicated_files() and stack.scheduler.now < deadline:
        stack.scheduler.run(until=stack.scheduler.now + 1.0, inclusive=True)
    assert manager.under_replicated_files() == 0
    kill(stack, "disk_fail", 1, scrub=True)
    deadline = stack.scheduler.now + 60.0
    while manager.under_replicated_files() and stack.scheduler.now < deadline:
        stack.scheduler.run(until=stack.scheduler.now + 1.0, inclusive=True)
    check_reads(stack, files, "two sequential kills with repair between")


# --------------------------------------------------------------------------- loop equivalence


def test_sequential_and_sharded_runs_agree():
    """The same populate + kill + fail-over sequence under both loops must
    produce the same replication counters and the same bytes."""
    snapshots = []
    for sharded in (False, True):
        stack = build_online(replica_spec(nodes=3, sharded=sharded, repair=False))
        files = populate(stack)
        kill(stack, "node_crash", 1, scrub=True)
        check_reads(stack, files, f"sharded={sharded}")
        snap = stack.cluster.replication.snapshot()
        snapshots.append(snap)
    assert snapshots[0] == snapshots[1]


# --------------------------------------------------------------------------- simulator counters


def test_simulator_counts_faults_failovers_and_repairs():
    """The PATSY replay surface: ``inject_faults`` arms a schedule and the
    per-node cluster statistics pick up fault, fail-over and repair
    counters the availability benchmark reports on."""
    from repro.config import cluster_config
    from repro.patsy.simulator import PatsySimulator
    from repro.patsy.workload import WorkloadProfile, generate_workload

    profile = WorkloadProfile(
        name="availability-smoke",
        duration=30.0,
        num_clients=4,
        read_fraction=0.7,
        initial_files=40,
        mean_file_size=8 * KB,
        mean_think_time=0.2,
        delete_fraction=0.0,
    )
    trace = generate_workload(profile, seed=3)
    config = cluster_config(
        nodes=3,
        scale=0.001,
        seed=3,
        volumes_per_node=1,
        disks_per_node=1,
        placement="hash",
        rebalance=False,
        replicas=1,
    )
    sim = PatsySimulator(config)
    sim.inject_faults([FaultEvent(time=10.0, kind="node_crash", target=1)])
    result = sim.replay(trace, trace_name="faulted")
    assert result.errors == 0
    stats = result.cluster_stats
    assert stats["replication"]["replicated_files"] > 0
    assert stats["faults"]["events_applied"] == 1
    assert stats["faults"]["dead_nodes"] == [1]
    assert stats["repairer"]["scans"] >= 1
    node1 = stats["per_node"]["node1"]["faults"]
    assert node1["events"] >= 1
    total_failovers = sum(
        entry["faults"].get("failovers", 0) for entry in stats["per_node"].values()
    )
    assert total_failovers == stats["replication"]["failover_reads"]
