"""Determinism pins for the sharded event loop and the parallel executor.

The acceptance bar of the parallel-replay work: on a partitioned cluster
trace, the sequential scheduler (global heap, node-merge policy), the
sharded loop (Stage A) and the per-node worker processes (Stage B) must
produce *identical* results — same ``SimulationResult`` summary, same
per-node event-schedule digests — at 1, 2 and 4 nodes.  Plus validation of
the shapes the executor refuses, and a hypothesis property that random NIC
timings never let the sharded loop execute an event ahead of an earlier
pending one on another node (the conservative window).
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest

from repro.config import cluster_config
from repro.core.clock import VirtualClock
from repro.core.cluster.network import Nic
from repro.core.scheduler import ShardedScheduler
from repro.errors import ConfigurationError
from repro.patsy.simulator import PatsySimulator
from repro.patsy.stats import LatencyRecorder
from repro.patsy.traces import TraceRecord


def partitioned_trace(clients=4, files_per_client=5, ops=140, seed=7):
    """A trace whose clients only ever touch their own ``/c{i}`` subtree —
    the shape the per-node partition requires."""
    rng = random.Random(seed)
    records = []
    t = 0.0
    for _ in range(ops):
        c = rng.randrange(clients)
        path = f"/c{c}/f{rng.randrange(files_per_client)}"
        r = rng.random()
        if r < 0.3:
            records.append(
                TraceRecord(
                    timestamp=t, client=c, op="write", path=path,
                    offset=rng.randrange(4) * 4096, size=4096,
                )
            )
        elif r < 0.7:
            records.append(
                TraceRecord(timestamp=t, client=c, op="read", path=path, offset=0, size=4096)
            )
        else:
            records.append(TraceRecord(timestamp=t, client=c, op="open", path=path))
            records.append(
                TraceRecord(timestamp=t + 0.001, client=c, op="close", path=path)
            )
        t += rng.random() * 0.01
    return records


def _config(nodes, *, parallel=False, sharded_loop=True, jobs=0,
            client_entry="home", placement="node", rebalance=False):
    config = cluster_config(
        nodes=nodes, scale=0.1, placement=placement, rebalance=rebalance
    )
    return replace(
        config,
        cluster=replace(
            config.cluster,
            parallel=parallel,
            sharded_loop=sharded_loop,
            jobs=jobs,
            client_entry=client_entry,
        ),
    )


def _replay(config, trace):
    sim = PatsySimulator(config)
    sim.scheduler.enable_schedule_hash()
    return sim.replay(trace, trace_name="pin")


# ---------------------------------------------------------------------------
# The byte-identical pin
# ---------------------------------------------------------------------------


def test_sequential_sharded_parallel_schedules_identical():
    """Seeded 2-node run: sequential == Stage A == Stage B, schedule and all."""
    trace = partitioned_trace()
    sequential = _replay(_config(2, sharded_loop=False), trace)
    sharded = _replay(_config(2), trace)
    parallel = _replay(_config(2, parallel=True), trace)

    assert sequential.schedule_digests
    assert sequential.schedule_digests == sharded.schedule_digests
    assert sharded.schedule_digests == parallel.schedule_digests
    assert sequential.summary() == sharded.summary()
    assert sharded.summary() == parallel.summary()


@pytest.mark.parametrize("nodes", [1, 2, 4])
def test_parallel_pin_at_1_2_4_nodes(nodes):
    trace = partitioned_trace()
    sharded = _replay(_config(nodes), trace)
    parallel = _replay(_config(nodes, parallel=True), trace)
    assert sharded.summary() == parallel.summary()
    assert sharded.schedule_digests == parallel.schedule_digests
    assert sharded.simulated_time == parallel.simulated_time
    assert sharded.errors == parallel.errors


def test_jobs_cap_does_not_change_results():
    """jobs=1 serialises the workers but the merged result is unchanged."""
    trace = partitioned_trace()
    full = _replay(_config(2, parallel=True), trace)
    capped = _replay(_config(2, parallel=True, jobs=1), trace)
    assert full.summary() == capped.summary()
    assert full.schedule_digests == capped.schedule_digests


def test_parallel_result_reports_worker_stats():
    from repro.analysis.report import format_cluster_table

    trace = partitioned_trace()
    result = _replay(_config(2, parallel=True), trace)
    stats = result.parallel_stats
    assert stats["workers"] == 2
    assert set(stats["local_ends"]) == {0, 1}
    assert stats["critical_path_seconds"] >= 0.0
    assert set(stats["worker_cpu_seconds"]) == {0, 1}
    table = format_cluster_table(result.cluster_stats)
    assert "parallel replay: workers=2" in table
    assert "critical-path=" in table


# ---------------------------------------------------------------------------
# Validation: shapes the partition cannot support
# ---------------------------------------------------------------------------


def test_parallel_requires_home_entry():
    from repro.core.parallel import ParallelReplayExecutor

    config = _config(2, parallel=True, client_entry="front-end")
    with pytest.raises(ConfigurationError, match="client_entry"):
        ParallelReplayExecutor(config)


def test_parallel_requires_node_placement():
    from repro.core.parallel import ParallelReplayExecutor

    config = _config(2, parallel=True, placement="hash")
    with pytest.raises(ConfigurationError, match="placement"):
        ParallelReplayExecutor(config)


def test_parallel_requires_rebalance_off():
    from repro.core.parallel import ParallelReplayExecutor

    config = _config(2, parallel=True, rebalance=True)
    with pytest.raises(ConfigurationError, match="rebalance"):
        ParallelReplayExecutor(config)


def test_strict_partition_rejects_directories_shared_across_nodes():
    records = [
        TraceRecord(timestamp=0.0, client=0, op="read", path="/shared/a", offset=0, size=1),
        TraceRecord(timestamp=0.1, client=1, op="read", path="/shared/b", offset=0, size=1),
    ]
    with pytest.raises(ConfigurationError, match="shared"):
        PatsySimulator.partition_setup_dirs(records, nodes=2, strict=True)


# ---------------------------------------------------------------------------
# Recorder merge exactness
# ---------------------------------------------------------------------------


def test_recorder_merge_matches_sequential_exactly():
    """Replaying the same completions through per-node shards and merging
    reproduces the sequential recorder's summary bit-for-bit (within the
    exact window)."""
    rng = random.Random(11)
    events = []  # (start, op, latency, client); client % 2 is the node
    t = 0.0
    for _ in range(400):
        t += rng.random() * 0.01
        events.append((t, rng.choice(["read", "write", "stat"]), rng.random() * 0.05,
                       rng.randrange(4)))

    sequential = LatencyRecorder()
    # Sequential order is completion order with the merge tie-break.
    for start, op, latency, client in sorted(
        events, key=lambda e: (e[0] + e[2], e[3] % 2)
    ):
        sequential.record(start, op, latency, client)
    sequential.finish()

    shards = [LatencyRecorder(), LatencyRecorder()]
    for start, op, latency, client in sorted(
        events, key=lambda e: (e[0] + e[2], e[3] % 2)
    ):
        shards[client % 2].record(start, op, latency, client)
    for shard in shards:
        shard.finish()
    merged = LatencyRecorder.merged(shards)

    assert merged.count == sequential.count
    assert merged.summary() == sequential.summary()


# ---------------------------------------------------------------------------
# The conservative window under random NIC timings (hypothesis)
# ---------------------------------------------------------------------------

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


@given(
    latency=st.floats(min_value=0.0, max_value=0.01, allow_nan=False),
    overhead=st.floats(min_value=0.0, max_value=0.001, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=25, deadline=None)
def test_window_never_executes_ahead_of_earlier_cross_node_delivery(
    latency, overhead, seed
):
    """Random NIC latencies/overheads never violate the conservative window:
    execution times are globally nondecreasing, so no node runs an event
    while another node still holds an earlier pending delivery."""
    scheduler = ShardedScheduler(clock=VirtualClock(), seed=1, nodes=2)
    nics = [
        Nic(scheduler, name=f"nic{n}", latency=latency, overhead=overhead)
        for n in range(2)
    ]
    rng = random.Random(seed)
    log = []  # (time, node) at every step of every worker thread

    def worker(node):
        for _ in range(10):
            log.append((scheduler.now, node))
            # Local think time, then a cross-node message through the NIC.
            yield from scheduler.sleep(rng.random() * 0.005)
            log.append((scheduler.now, node))
            yield from nics[node].send(rng.randrange(1, 64 * 1024))
        log.append((scheduler.now, node))

    threads = [
        scheduler.spawn(worker, n, name=f"w{n}", node=n) for n in range(2)
    ]
    scheduler.run()
    assert all(not t.alive for t in threads)
    times = [t for t, _ in log]
    assert times == sorted(times), "an event executed before an earlier pending one"
